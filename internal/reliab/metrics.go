package reliab

import (
	"virtnet/internal/obs"
	"virtnet/internal/sim"
	"virtnet/internal/trace"
)

// Metrics aggregates the reliability layer's counters and its retry-
// backoff histogram. One Metrics is typically shared by every client and
// server in an experiment so the dashboard shows cluster-wide totals. A
// nil *Metrics is valid and records nothing, which lets the layers thread
// it through unconditionally.
//
// Counter names (all under the "reliab" registry prefix): shed,
// deadline_exceeded, overload_nacks, retries, retry_denied, breaker_open,
// breaker_halfopen, breaker_close, breaker_fastfail, idem_hits, idem_dup,
// stale_reclaimed.
type Metrics struct {
	C       *trace.Counters
	Backoff *trace.Hist
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{C: trace.NewCounters(), Backoff: trace.NewHist()}
}

// Inc increments counter name by one; nil-safe.
func (m *Metrics) Inc(name string) {
	if m != nil {
		m.C.Inc(name)
	}
}

// Add increments counter name by n; nil-safe.
func (m *Metrics) Add(name string, n int64) {
	if m != nil {
		m.C.Add(name, n)
	}
}

// Get returns counter name's value; nil-safe.
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	return m.C.Get(name)
}

// ObserveBackoff records one retry-backoff delay; nil-safe.
func (m *Metrics) ObserveBackoff(d sim.Duration) {
	if m != nil {
		m.Backoff.Observe(d)
	}
}

// Register publishes the counters and the backoff histogram in the
// unified metrics registry under the "reliab" prefix, where they appear in
// the dashboard's reliability section.
func (m *Metrics) Register(r *obs.Registry) {
	if m == nil || r == nil {
		return
	}
	r.AddCounters("reliab", m.C)
	r.AddHist("reliab.backoff", m.Backoff)
}
