package reliab

// IdemKey identifies one idempotent operation: the client's identity plus
// its per-operation key, so keys from different clients never collide.
type IdemKey struct {
	Client uint64
	Key    uint64
}

// IdemCache remembers the results of recently served idempotency-keyed
// calls, so a retry of an already-executed call returns the recorded
// result instead of running the handler again — the exactly-once story
// for effects under at-least-once delivery. Bounded, FIFO-evicted.
type IdemCache struct {
	max  int
	vals map[IdemKey]interface{}
	fifo []IdemKey
	m    *Metrics
}

// NewIdemCache returns a cache holding at most max results. m may be nil.
func NewIdemCache(max int, m *Metrics) *IdemCache {
	if max <= 0 {
		max = 1
	}
	return &IdemCache{max: max, vals: make(map[IdemKey]interface{}), m: m}
}

// Get returns the cached result for k, if present.
func (c *IdemCache) Get(k IdemKey) (interface{}, bool) {
	v, ok := c.vals[k]
	if ok {
		c.m.Inc("idem_hits")
	}
	return v, ok
}

// Put records the result of an executed call, evicting the oldest entry
// when full.
func (c *IdemCache) Put(k IdemKey, v interface{}) {
	if _, ok := c.vals[k]; ok {
		c.vals[k] = v
		return
	}
	if len(c.fifo) >= c.max {
		delete(c.vals, c.fifo[0])
		c.fifo = c.fifo[1:]
	}
	c.vals[k] = v
	c.fifo = append(c.fifo, k)
}

// Len reports the number of cached results.
func (c *IdemCache) Len() int { return len(c.vals) }
