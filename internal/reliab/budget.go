package reliab

import "virtnet/internal/sim"

// BudgetConfig sizes a retry token bucket.
type BudgetConfig struct {
	// Capacity is the bucket size: the burst of retries allowed back to
	// back before the peer must refill (default 3 — the reissue bound the
	// pre-budget code used per fragment, now shared per peer).
	Capacity int
	// Refill returns one token every Refill of virtual time (default
	// 250 ms), bounding the long-run retry rate at 1/Refill.
	Refill sim.Duration
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.Capacity <= 0 {
		c.Capacity = 3
	}
	if c.Refill <= 0 {
		c.Refill = 250 * sim.Millisecond
	}
	return c
}

// Budget is a per-peer token-bucket retry budget: each retry spends a
// token, tokens return at a fixed rate, and an empty bucket denies the
// retry. Retry storms are impossible by construction — no matter how many
// sends bounce, the sustained retry rate toward one peer cannot exceed
// 1/Refill.
type Budget struct {
	cfg    BudgetConfig
	tokens int
	last   sim.Time // time refill accrues from while below capacity
}

// NewBudget returns a full bucket.
func NewBudget(cfg BudgetConfig) *Budget {
	cfg = cfg.withDefaults()
	return &Budget{cfg: cfg, tokens: cfg.Capacity}
}

func (b *Budget) refill(now sim.Time) {
	if b.tokens >= b.cfg.Capacity {
		b.last = now
		return
	}
	for b.last.Add(b.cfg.Refill) <= now && b.tokens < b.cfg.Capacity {
		b.last = b.last.Add(b.cfg.Refill)
		b.tokens++
	}
	if b.tokens >= b.cfg.Capacity {
		b.last = now
	}
}

// Allow spends one token if available.
func (b *Budget) Allow(now sim.Time) bool {
	b.refill(now)
	if b.tokens <= 0 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the tokens available at virtual time now.
func (b *Budget) Tokens(now sim.Time) int {
	b.refill(now)
	return b.tokens
}
