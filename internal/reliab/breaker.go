package reliab

import "virtnet/internal/sim"

// BreakerState enumerates the circuit-breaker states.
type BreakerState int

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: calls fast-fail with ErrCircuitOpen until a probe is due.
	Open
	// HalfOpen: exactly one probe call is in flight; its outcome decides.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "?"
}

// BreakerConfig tunes a per-peer circuit breaker.
type BreakerConfig struct {
	// Threshold consecutive failures open the breaker (default 4).
	Threshold int
	// Cooldown before the first half-open probe (default 25 ms); it
	// doubles on every probe failure up to MaxCooldown (default 1 s).
	Cooldown    sim.Duration
	MaxCooldown sim.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 25 * sim.Millisecond
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = sim.Second
	}
	return c
}

// Breaker is a per-peer circuit breaker over ErrUnreachable/timeout
// failures: enough consecutive failures open it, open calls fail fast
// without touching the wire, and recovery is probed — either after an
// exponentially growing cooldown or early when an external health source
// (the glunix monitor) reports the peer alive again.
type Breaker struct {
	cfg       BreakerConfig
	state     BreakerState
	fails     int
	openedAt  sim.Time
	cool      sim.Duration
	lastProbe sim.Time
	health    func() bool
	m         *Metrics
}

// NewBreaker returns a closed breaker. m may be nil.
func NewBreaker(cfg BreakerConfig, m *Metrics) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), m: m}
}

// SetHealth installs an external liveness source. While the breaker is
// open, a healthy verdict admits a half-open probe ahead of the cooldown —
// rate-limited to half a cooldown between probes, so a wrong monitor
// cannot turn the breaker into a hot retry loop.
func (b *Breaker) SetHealth(alive func() bool) { b.health = alive }

// State reports the current breaker state.
func (b *Breaker) State() BreakerState { return b.state }

// Allow reports whether a call may be issued now. In the open state a true
// return is the half-open probe: exactly one caller gets it, and its
// Success or Failure decides the breaker's fate.
func (b *Breaker) Allow(now sim.Time) bool {
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		return false // the probe is already in flight
	}
	due := now.Sub(b.openedAt) >= b.cool
	if !due && b.health != nil && b.health() && now.Sub(b.lastProbe) >= b.cool/2 {
		due = true
	}
	if !due {
		return false
	}
	b.state = HalfOpen
	b.lastProbe = now
	b.m.Inc("breaker_halfopen")
	return true
}

// Success records a completed call (any response from the peer counts —
// even an overload NACK proves it is alive).
func (b *Breaker) Success(now sim.Time) {
	if b.state != Closed {
		b.m.Inc("breaker_close")
	}
	b.state = Closed
	b.fails = 0
	b.cool = 0
}

// Failure records an ErrUnreachable or timeout outcome.
func (b *Breaker) Failure(now sim.Time) {
	switch b.state {
	case HalfOpen:
		b.reopen(now)
	case Closed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.reopen(now)
		}
	}
	// Failures of calls already in flight when the breaker opened change
	// nothing: the cooldown clock is already running.
}

func (b *Breaker) reopen(now sim.Time) {
	if b.cool == 0 {
		b.cool = b.cfg.Cooldown
	} else {
		b.cool *= 2
		if b.cool > b.cfg.MaxCooldown {
			b.cool = b.cfg.MaxCooldown
		}
	}
	b.state = Open
	b.openedAt = now
	b.m.Inc("breaker_open")
}
