package reliab

import (
	"math/rand"
	"strings"
	"testing"

	"virtnet/internal/obs"
	"virtnet/internal/sim"
)

func TestCtxWireRoundTrip(t *testing.T) {
	ctx := Ctx{Deadline: sim.Time(12345678), IdemKey: 0xDEADBEEF}
	wire := make([]byte, HeaderLen+3)
	ctx.Encode(wire)
	copy(wire[HeaderLen:], []byte{1, 2, 3})
	got, body := DecodeCtx(wire)
	if got != ctx {
		t.Fatalf("round trip: got %+v want %+v", got, ctx)
	}
	if len(body) != 3 || body[0] != 1 || body[2] != 3 {
		t.Fatalf("body corrupted: %v", body)
	}
	if ctx.Expired(sim.Time(12345677)) || !ctx.Expired(sim.Time(12345678)) {
		t.Fatal("Expired boundary wrong")
	}
	if ctx.Remaining(sim.Time(12345670)) != 8 {
		t.Fatalf("Remaining = %d", ctx.Remaining(sim.Time(12345670)))
	}
	none := Ctx{}
	if none.Expired(1 << 40) {
		t.Fatal("no-deadline ctx must never expire")
	}
}

func TestBudgetRefill(t *testing.T) {
	b := NewBudget(BudgetConfig{Capacity: 2, Refill: 100 * sim.Millisecond})
	now := sim.Time(0)
	if !b.Allow(now) || !b.Allow(now) {
		t.Fatal("initial burst denied")
	}
	if b.Allow(now) {
		t.Fatal("empty bucket allowed a retry")
	}
	now = now.Add(100 * sim.Millisecond)
	if !b.Allow(now) {
		t.Fatal("refilled token denied")
	}
	if b.Allow(now) {
		t.Fatal("only one token should have refilled")
	}
	// Long idle refills back to capacity, not beyond.
	now = now.Add(10 * sim.Second)
	if got := b.Tokens(now); got != 2 {
		t.Fatalf("tokens after idle = %d, want capacity 2", got)
	}
}

func TestBackoffGrowsAndStaysBounded(t *testing.T) {
	cfg := BackoffConfig{Base: 100 * sim.Microsecond, Cap: 1 * sim.Millisecond}
	rng := rand.New(rand.NewSource(7))
	prev := sim.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := cfg.Delay(attempt, rng)
		nominal := cfg.Base
		for i := 0; i < attempt && nominal < cfg.Cap; i++ {
			nominal *= 2
		}
		if nominal > cfg.Cap {
			nominal = cfg.Cap
		}
		if d < nominal/2 || d > nominal {
			t.Fatalf("attempt %d: delay %v outside [%v,%v]", attempt, d, nominal/2, nominal)
		}
		if attempt < 3 && d <= prev/4 {
			t.Fatalf("attempt %d: delay %v did not grow from %v", attempt, d, prev)
		}
		prev = d
	}
	// Same seed, same schedule: the determinism contract.
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		if cfg.Delay(i, a) != cfg.Delay(i, b) {
			t.Fatal("backoff not deterministic per seed")
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	m := NewMetrics()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * sim.Millisecond, MaxCooldown: 40 * sim.Millisecond}, m)
	now := sim.Time(0)
	for i := 0; i < 3; i++ {
		if !b.Allow(now) {
			t.Fatal("closed breaker denied a call")
		}
		b.Failure(now)
	}
	if b.State() != Open {
		t.Fatalf("state after threshold failures = %v", b.State())
	}
	if b.Allow(now.Add(5 * sim.Millisecond)) {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	now = now.Add(10 * sim.Millisecond)
	if !b.Allow(now) {
		t.Fatal("cooldown elapsed but no probe")
	}
	if b.State() != HalfOpen || b.Allow(now) {
		t.Fatal("half-open must admit exactly one probe")
	}
	b.Failure(now) // probe failed: reopen with doubled cooldown
	if b.State() != Open {
		t.Fatal("failed probe did not reopen")
	}
	if b.Allow(now.Add(15 * sim.Millisecond)) {
		t.Fatal("cooldown did not double after failed probe")
	}
	now = now.Add(20 * sim.Millisecond)
	if !b.Allow(now) {
		t.Fatal("second probe not admitted")
	}
	b.Success(now)
	if b.State() != Closed || !b.Allow(now) {
		t.Fatal("successful probe did not close the breaker")
	}
	if m.Get("breaker_open") != 2 || m.Get("breaker_close") != 1 {
		t.Fatalf("counters: open=%d close=%d", m.Get("breaker_open"), m.Get("breaker_close"))
	}
}

func TestBreakerHealthProbeRidesMonitor(t *testing.T) {
	alive := false
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: sim.Second}, nil)
	b.SetHealth(func() bool { return alive })
	b.Failure(0)
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
	if b.Allow(10 * 1000 * 1000) { // 10ms: cooldown far away, peer still dead
		t.Fatal("probe admitted while monitor says dead")
	}
	alive = true
	now := sim.Time(600 * sim.Millisecond) // past cool/2 since lastProbe, before cooldown
	if !b.Allow(now) {
		t.Fatal("healthy verdict did not admit an early probe")
	}
	if b.State() != HalfOpen {
		t.Fatal("early probe did not half-open")
	}
}

func TestAdmitQueueShedsExpiredFirst(t *testing.T) {
	m := NewMetrics()
	q := NewAdmitQueue(2, m)
	now := sim.Time(0)
	if _, ok := q.Admit(now, Ctx{Deadline: 100}, "a"); !ok {
		t.Fatal("admit a")
	}
	if _, ok := q.Admit(now, Ctx{Deadline: 5000}, "b"); !ok {
		t.Fatal("admit b")
	}
	// Full of unexpired work: reject.
	if _, ok := q.Admit(sim.Time(50), Ctx{Deadline: 5000}, "c"); ok {
		t.Fatal("overload not signalled")
	}
	// After a's deadline, admitting evicts it rather than rejecting.
	evicted, ok := q.Admit(sim.Time(200), Ctx{Deadline: 5000}, "d")
	if !ok || len(evicted) != 1 || evicted[0].V.(string) != "a" {
		t.Fatalf("evict: ok=%v evicted=%v", ok, evicted)
	}
	if m.Get("shed") != 1 {
		t.Fatalf("shed counter = %d", m.Get("shed"))
	}
	if it, ok := q.Pop(); !ok || it.V.(string) != "b" {
		t.Fatalf("pop order wrong: %v", it.V)
	}
	if it, ok := q.Pop(); !ok || it.V.(string) != "d" {
		t.Fatalf("pop order wrong: %v", it.V)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestIdemCacheBoundedFIFO(t *testing.T) {
	m := NewMetrics()
	c := NewIdemCache(2, m)
	c.Put(IdemKey{1, 1}, "one")
	c.Put(IdemKey{1, 2}, "two")
	c.Put(IdemKey{1, 3}, "three") // evicts {1,1}
	if _, ok := c.Get(IdemKey{1, 1}); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := c.Get(IdemKey{1, 2}); !ok || v.(string) != "two" {
		t.Fatal("retained entry lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if m.Get("idem_hits") != 1 {
		t.Fatalf("idem_hits = %d", m.Get("idem_hits"))
	}
}

// TestReliabilityDashboardSection is the snapshot test for the dashboard's
// reliability section: counters and the backoff histogram registered under
// the "reliab" prefix render there, and nothing else leaks in.
func TestReliabilityDashboardSection(t *testing.T) {
	e := sim.NewEngine(1)
	r := obs.NewRegistry(e)
	m := NewMetrics()
	m.Register(r)
	r.AddGauge("other.gauge", func() float64 { return 9 })

	m.Inc("shed")
	m.Add("retries", 3)
	m.Inc("breaker_open")
	m.Inc("deadline_exceeded")
	m.ObserveBackoff(200 * sim.Microsecond)
	m.ObserveBackoff(400 * sim.Microsecond)

	got := r.DashboardSection("reliab")
	want := "== reliab @ 0ns ==\n" +
		"reliab.backoff.count                                  2\n" +
		"reliab.backoff.mean_us                              300\n" +
		"reliab.breaker_open                                   1\n" +
		"reliab.deadline_exceeded                              1\n" +
		"reliab.retries                                        3\n" +
		"reliab.shed                                           1\n"
	if got != want {
		t.Fatalf("dashboard section snapshot mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if strings.Contains(got, "other.gauge") {
		t.Fatal("section leaked foreign metrics")
	}
}
