package splitc

import (
	"bytes"
	"testing"

	"virtnet/internal/hostos"
	"virtnet/internal/sim"
)

func newWorld(t *testing.T, n, heap int) *World {
	t.Helper()
	c := hostos.NewCluster(1, n, hostos.DefaultClusterConfig())
	t.Cleanup(c.Shutdown)
	w, err := NewWorld(c, n, heap, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGetPut(t *testing.T) {
	w := newWorld(t, 2, 4096)
	copy(w.Rank(1).Heap[100:], []byte("remote-data"))
	var got []byte
	stop := false
	ok := w.Run(func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			b, err := r.Get(p, 1, 100, 11)
			if err != nil {
				t.Errorf("get: %v", err)
			}
			got = b
			if err := r.Put(p, 1, 200, []byte("written")); err != nil {
				t.Errorf("put: %v", err)
			}
			stop = true
		} else {
			for !stop {
				r.Poll(p)
				p.Sleep(2 * sim.Microsecond)
			}
		}
	}, 5*sim.Second)
	if !ok {
		t.Fatal("did not complete")
	}
	if string(got) != "remote-data" {
		t.Fatalf("get returned %q", got)
	}
	if string(w.Rank(1).Heap[200:207]) != "written" {
		t.Fatalf("put did not write: %q", w.Rank(1).Heap[200:207])
	}
}

func TestStoreAndSync(t *testing.T) {
	w := newWorld(t, 2, 65536)
	const stores = 20
	stop := false
	ok := w.Run(func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < stores; i++ {
				buf := bytes.Repeat([]byte{byte(i + 1)}, 64)
				if err := r.Store(p, 1, i*64, buf); err != nil {
					t.Errorf("store %d: %v", i, err)
				}
			}
			r.StoreSync(p)
			stop = true
		} else {
			for !stop {
				r.Poll(p)
				p.Sleep(2 * sim.Microsecond)
			}
		}
	}, 5*sim.Second)
	if !ok {
		t.Fatal("did not complete")
	}
	for i := 0; i < stores; i++ {
		if w.Rank(1).Heap[i*64] != byte(i+1) || w.Rank(1).Heap[i*64+63] != byte(i+1) {
			t.Fatalf("store %d not applied", i)
		}
	}
}

func TestGetOutOfRange(t *testing.T) {
	w := newWorld(t, 2, 128)
	stop := false
	var got []byte
	ok := w.Run(func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			got, _ = r.Get(p, 1, 1000, 64) // beyond heap
			stop = true
		} else {
			for !stop {
				r.Poll(p)
				p.Sleep(2 * sim.Microsecond)
			}
		}
	}, 5*sim.Second)
	if !ok {
		t.Fatal("did not complete (out-of-range get hung)")
	}
	if len(got) != 0 {
		t.Fatalf("out-of-range get returned %d bytes", len(got))
	}
}

func TestBarrierRounds(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6} {
		w := newWorld(t, n, 64)
		var latest sim.Time
		var exits []sim.Time
		ok := w.Run(func(p *sim.Proc, r *Rank) {
			p.Sleep(sim.Duration(r.ID()+1) * sim.Millisecond)
			if p.Now() > latest {
				latest = p.Now()
			}
			r.Barrier(p)
			exits = append(exits, p.Now())
			// Second barrier immediately after: must also work.
			r.Barrier(p)
		}, 10*sim.Second)
		if !ok {
			t.Fatalf("n=%d: barrier deadlocked", n)
		}
		for _, e := range exits {
			if e < latest {
				t.Fatalf("n=%d: rank left barrier at %v before last arrival at %v", n, e, latest)
			}
		}
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	// Both ranks do gets against each other simultaneously; handlers are
	// served by the polling inside Get itself.
	w := newWorld(t, 2, 1024)
	copy(w.Rank(0).Heap, []byte("zero-heap"))
	copy(w.Rank(1).Heap, []byte("one-heap!"))
	results := make([][]byte, 2)
	ok := w.Run(func(p *sim.Proc, r *Rank) {
		peer := 1 - r.ID()
		for i := 0; i < 10; i++ {
			b, err := r.Get(p, peer, 0, 9)
			if err != nil {
				t.Errorf("get: %v", err)
			}
			results[r.ID()] = b
		}
	}, 5*sim.Second)
	if !ok {
		t.Fatal("bidirectional gets deadlocked")
	}
	if string(results[0]) != "one-heap!" || string(results[1]) != "zero-heap" {
		t.Fatalf("results: %q %q", results[0], results[1])
	}
}
