// Package splitc is a small one-sided communication library in the style of
// Split-C (the language the paper's time-shared workloads of §6.3 are
// written in): each rank exposes a heap that remote ranks read with Get and
// write with Put/Store, plus split-phase store synchronization and a
// barrier. Like the original, it is a thin veneer over Active Messages —
// remote accesses are served by handlers that run when the target polls.
package splitc

import (
	"fmt"

	"virtnet/internal/core"
	"virtnet/internal/hostos"
	"virtnet/internal/nic"
	"virtnet/internal/sim"
)

// Handler indices.
const (
	hGet      = 1
	hGetReply = 2
	hPut      = 3
	hAck      = 4
	hStore    = 5
	hBarrier  = 6
)

// Rank is one participant: an endpoint plus its exposed heap.
type Rank struct {
	w    *World
	rank int
	ep   *core.Endpoint
	node *hostos.Node

	// Heap is the globally addressable memory of this rank.
	Heap []byte

	nextReq  uint64
	getSlots map[uint64]*getSlot

	storesOut  int // store requests issued
	storesDone int // store acks received

	barrierSeen map[[2]int]bool
	barrierEp   int

	// CommTime accumulates time spent inside data-movement operations
	// (Get/Put/Store/StoreSync) — the §6.3 "time spent in communication"
	// metric: when an application communicates it should see full network
	// performance regardless of time-sharing.
	CommTime sim.Duration
	// SyncTime accumulates time inside Barrier, which includes waiting for
	// peers that the local schedulers have descheduled.
	SyncTime sim.Duration
}

type getSlot struct {
	data []byte
	done bool
}

// World is a set of ranks with mutually addressable heaps.
type World struct {
	Cluster *hostos.Cluster
	ranks   []*Rank
	running int
}

// NewWorld creates n ranks with heapSize-byte heaps; rank i runs on node
// nodes[i] (nil places rank i on node i).
func NewWorld(c *hostos.Cluster, n, heapSize int, nodes []int) (*World, error) {
	if nodes == nil {
		nodes = make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
	}
	w := &World{Cluster: c}
	eps := make([]*core.Endpoint, n)
	for i := 0; i < n; i++ {
		b := core.Attach(c.Nodes[nodes[i]])
		ep, err := b.NewEndpoint(core.Key(0xC0DE+i), n)
		if err != nil {
			return nil, err
		}
		eps[i] = ep
		w.ranks = append(w.ranks, &Rank{
			w:           w,
			rank:        i,
			ep:          ep,
			node:        c.Nodes[nodes[i]],
			Heap:        make([]byte, heapSize),
			getSlots:    make(map[uint64]*getSlot),
			barrierSeen: make(map[[2]int]bool),
		})
	}
	if err := core.MakeVirtualNetwork(eps); err != nil {
		return nil, err
	}
	for _, r := range w.ranks {
		r.install()
	}
	return w, nil
}

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Running reports how many launched ranks have not yet finished.
func (w *World) Running() int { return w.running }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Launch spawns fn on every rank.
func (w *World) Launch(fn func(p *sim.Proc, r *Rank)) {
	for _, r := range w.ranks {
		r := r
		w.running++
		r.node.Spawn(fmt.Sprintf("sc%d", r.rank), func(p *sim.Proc) {
			defer func() { w.running-- }()
			fn(p, r)
		})
	}
}

// Run spawns fn on every rank and advances the engine until all return or
// maxTime passes; it reports completion.
func (w *World) Run(fn func(p *sim.Proc, r *Rank), maxTime sim.Duration) bool {
	w.Launch(fn)
	deadline := w.Cluster.E.Now().Add(maxTime)
	for w.running > 0 && w.Cluster.E.Now() < deadline {
		w.Cluster.E.RunFor(sim.Millisecond)
	}
	return w.running == 0
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.rank }

// World returns the world this rank belongs to.
func (r *Rank) World() *World { return r.w }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.Size() }

// Node returns the rank's workstation.
func (r *Rank) Node() *hostos.Node { return r.node }

func (r *Rank) install() {
	r.ep.SetHandler(hGet, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
		off, n, req := int(args[0]), int(args[1]), args[2]
		if off < 0 || off+n > len(r.Heap) {
			tok.Reply(p, hGetReply, [4]uint64{req, 1}) // out of range
			return
		}
		tok.ReplyBulk(p, hGetReply, r.Heap[off:off+n], [4]uint64{req, 0})
	})
	r.ep.SetHandler(hGetReply, func(p *sim.Proc, tok *core.Token, args [4]uint64, payload []byte) {
		if slot, ok := r.getSlots[args[0]]; ok {
			slot.data = payload
			slot.done = true
		}
	})
	write := func(p *sim.Proc, tok *core.Token, args [4]uint64, payload []byte) {
		off := int(args[0])
		if off >= 0 && off+len(payload) <= len(r.Heap) {
			copy(r.Heap[off:], payload)
		}
		tok.Reply(p, hAck, [4]uint64{})
	}
	r.ep.SetHandler(hPut, write)
	r.ep.SetHandler(hStore, write)
	r.ep.SetHandler(hAck, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
		r.storesDone++
	})
	r.ep.SetHandler(hBarrier, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
		r.barrierSeen[[2]int{int(args[0]), int(args[1])}] = true
		tok.Reply(p, hAck+10, [4]uint64{}) // untracked ack
	})
	r.ep.SetHandler(hAck+10, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {})
	// Re-issue undeliverable one-sided operations (§3.2 error model).
	r.ep.SetReturnHandler(func(p *sim.Proc, _ nic.NackReason, dstIdx, h int, args [4]uint64, payload []byte) {
		if dstIdx < 0 {
			return
		}
		switch h {
		case hGet, hBarrier:
			r.ep.Request(p, dstIdx, h, args)
		case hPut, hStore:
			r.ep.RequestBulk(p, dstIdx, h, payload, args)
		}
	})
}

// Poll services incoming one-sided requests.
func (r *Rank) Poll(p *sim.Proc) int { return r.ep.Poll(p) }

// Get reads n bytes at offset off of rank dst's heap, blocking (and
// servicing incoming requests) until the data arrives.
func (r *Rank) Get(p *sim.Proc, dst, off, n int) ([]byte, error) {
	if n > r.node.NIC.Config().MTU {
		return nil, fmt.Errorf("splitc: get of %d bytes exceeds MTU", n)
	}
	t0 := p.Now()
	defer func() { r.CommTime += p.Now().Sub(t0) }()
	req := r.nextReq
	r.nextReq++
	slot := &getSlot{}
	r.getSlots[req] = slot
	if err := r.ep.Request(p, dst, hGet, [4]uint64{uint64(off), uint64(n), req}); err != nil {
		return nil, err
	}
	wait := sim.Microsecond
	for !slot.done {
		if r.ep.Poll(p) == 0 {
			p.Sleep(wait)
			if wait < 50*sim.Microsecond {
				wait *= 2
			}
		} else {
			wait = sim.Microsecond
		}
	}
	delete(r.getSlots, req)
	return slot.data, nil
}

// Put writes data into rank dst's heap at off, blocking until acknowledged.
func (r *Rank) Put(p *sim.Proc, dst, off int, data []byte) error {
	t0 := p.Now()
	defer func() { r.CommTime += p.Now().Sub(t0) }()
	start := r.storesDone
	if err := r.store(p, dst, off, data); err != nil {
		return err
	}
	wait := sim.Microsecond
	for r.storesDone == start && r.storesOut > start {
		if r.ep.Poll(p) == 0 {
			p.Sleep(wait)
			if wait < 50*sim.Microsecond {
				wait *= 2
			}
		} else {
			wait = sim.Microsecond
		}
	}
	return nil
}

// Store writes data into rank dst's heap at off without waiting; use
// StoreSync to wait for all outstanding stores (split-phase, as in
// Split-C's store/all_store_sync).
func (r *Rank) Store(p *sim.Proc, dst, off int, data []byte) error {
	return r.store(p, dst, off, data)
}

func (r *Rank) store(p *sim.Proc, dst, off int, data []byte) error {
	if len(data) > r.node.NIC.Config().MTU {
		return fmt.Errorf("splitc: store of %d bytes exceeds MTU", len(data))
	}
	r.storesOut++
	return r.ep.RequestBulk(p, dst, hStore, data, [4]uint64{uint64(off)})
}

// StoreSync blocks until every store issued by this rank has been written
// and acknowledged.
func (r *Rank) StoreSync(p *sim.Proc) {
	t0 := p.Now()
	defer func() { r.CommTime += p.Now().Sub(t0) }()
	wait := sim.Microsecond
	for r.storesDone < r.storesOut {
		if r.ep.Poll(p) == 0 {
			p.Sleep(wait)
			if wait < 50*sim.Microsecond {
				wait *= 2
			}
		} else {
			wait = sim.Microsecond
		}
	}
}

// Barrier synchronizes all ranks (dissemination).
func (r *Rank) Barrier(p *sim.Proc) error {
	t0 := p.Now()
	defer func() { r.SyncTime += p.Now().Sub(t0) }()
	n := r.w.Size()
	ep := r.barrierEp
	r.barrierEp++
	round := 0
	for k := 1; k < n; k <<= 1 {
		dst := (r.rank + k) % n
		src := (r.rank - k + n) % n
		_ = src
		if err := r.ep.Request(p, dst, hBarrier, [4]uint64{uint64(ep), uint64(round)}); err != nil {
			return err
		}
		wait := sim.Microsecond
		for !r.barrierSeen[[2]int{ep, round}] {
			if r.ep.Poll(p) == 0 {
				p.Sleep(wait)
				if wait < 50*sim.Microsecond {
					wait *= 2
				}
			} else {
				wait = sim.Microsecond
			}
		}
		delete(r.barrierSeen, [2]int{ep, round})
		round++
	}
	return nil
}
