// Package logp measures the LogP parameters of a communication layer using
// the method of Culler, Liu, Martin & Yoshikawa ("LogP Performance
// Assessment of Fast Network Interfaces"): the send and receive overheads
// Os and Or are the host-processor time writing/reading a message, L
// accumulates the remaining end-to-end time (L = RTT/2 - Os - Or), and the
// gap g is the steady-state time per message through the rate-limiting
// stage, measured by issuing a long burst. It reproduces Fig. 3 of the
// paper for both virtual networks (AM) and the first-generation layer (GAM).
package logp

import (
	"virtnet/internal/core"
	"virtnet/internal/gam"
	"virtnet/internal/sim"
)

// Replier is what a request handler uses to reply; both core.Token and
// gam.Token satisfy it.
type Replier interface {
	Reply(p *sim.Proc, h int, args [4]uint64) error
	ReplyBulk(p *sim.Proc, h int, payload []byte, args [4]uint64) error
}

// HandlerFunc is a layer-independent handler.
type HandlerFunc func(p *sim.Proc, rep Replier, args [4]uint64, payload []byte)

// Station abstracts one side of a point-to-point measurement.
type Station interface {
	Request(p *sim.Proc, h int, args [4]uint64) error
	RequestBulk(p *sim.Proc, h int, payload []byte, args [4]uint64) error
	Poll(p *sim.Proc) int
	SetHandler(i int, h HandlerFunc)
}

// AMStation adapts a virtual-network endpoint (requests go to translation
// table slot Idx).
type AMStation struct {
	EP  *core.Endpoint
	Idx int
}

func (s AMStation) Request(p *sim.Proc, h int, args [4]uint64) error {
	return s.EP.Request(p, s.Idx, h, args)
}
func (s AMStation) RequestBulk(p *sim.Proc, h int, payload []byte, args [4]uint64) error {
	return s.EP.RequestBulk(p, s.Idx, h, payload, args)
}
func (s AMStation) Poll(p *sim.Proc) int { return s.EP.Poll(p) }
func (s AMStation) SetHandler(i int, h HandlerFunc) {
	s.EP.SetHandler(i, func(p *sim.Proc, tok *core.Token, args [4]uint64, payload []byte) {
		h(p, tok, args, payload)
	})
}

// GAMStation adapts a GAM node (requests go to node Dst).
type GAMStation struct {
	N   *gam.Node
	Dst int
}

func (s GAMStation) Request(p *sim.Proc, h int, args [4]uint64) error {
	return s.N.Request(p, s.Dst, h, args)
}
func (s GAMStation) RequestBulk(p *sim.Proc, h int, payload []byte, args [4]uint64) error {
	return s.N.RequestBulk(p, s.Dst, h, payload, args)
}
func (s GAMStation) Poll(p *sim.Proc) int { return s.N.Poll(p) }
func (s GAMStation) SetHandler(i int, h HandlerFunc) {
	s.N.SetHandler(i, func(p *sim.Proc, tok *gam.Token, args [4]uint64, payload []byte) {
		h(p, tok, args, payload)
	})
}

// Handler indices used by the harness.
const (
	hEcho  = 1 // server: reply with hReply
	hReply = 2 // client: reply arrival
	hSink  = 3 // server: reply with a small ack (bandwidth test)
)

// Result holds the LogP characterization of a layer (all microseconds when
// printed; stored as durations).
type Result struct {
	Os  sim.Duration
	Or  sim.Duration
	L   sim.Duration
	G   sim.Duration
	RTT sim.Duration
}

// Measure runs the LogP microbenchmarks between client and server stations
// on engine e. The engine is advanced as needed; both stations must already
// be addressable to each other.
func Measure(e *sim.Engine, client, server Station, iters int) Result {
	var res Result
	replies := 0
	// The server handler times its own reply issue so the harness can
	// separate Or (receive overhead) from the reply's send overhead.
	var replyCost sim.Duration
	server.SetHandler(hEcho, func(p *sim.Proc, rep Replier, args [4]uint64, _ []byte) {
		r0 := p.Now()
		rep.Reply(p, hReply, args)
		replyCost += p.Now().Sub(r0)
	})
	client.SetHandler(hReply, func(p *sim.Proc, rep Replier, args [4]uint64, _ []byte) {
		replies++
	})

	serverStop := false
	var srvBusy sim.Duration
	srvHandled := 0
	e.Spawn("logp-server", func(p *sim.Proc) {
		for !serverStop {
			t0 := p.Now()
			k := server.Poll(p)
			if k > 0 {
				srvBusy += p.Now().Sub(t0)
				srvHandled += k
			} else {
				p.Sleep(200 * sim.Nanosecond)
			}
		}
	})

	done := false
	e.Spawn("logp-client", func(p *sim.Proc) {
		defer func() { done = true; serverStop = true }()

		// Warm-up: fault the endpoints resident and fill caches.
		for w := 0; w < 3; w++ {
			target := replies + 1
			client.Request(p, hEcho, [4]uint64{})
			for replies < target {
				client.Poll(p)
				p.Sleep(200 * sim.Nanosecond)
			}
		}
		srvBusy, srvHandled, replyCost = 0, 0, 0

		// Os and RTT: ping-pong, timing the request call and the round trip.
		var osSum, rttSum sim.Duration
		for i := 0; i < iters; i++ {
			target := replies + 1
			t0 := p.Now()
			client.Request(p, hEcho, [4]uint64{uint64(i)})
			t1 := p.Now()
			osSum += t1.Sub(t0)
			for replies < target {
				if client.Poll(p) == 0 {
					p.Sleep(200 * sim.Nanosecond)
				}
			}
			rttSum += p.Now().Sub(t0)
		}
		res.Os = osSum / sim.Duration(iters)
		res.RTT = rttSum / sim.Duration(iters)
		// Or: server host time per incoming request, excluding the reply
		// issue it performs inside the handler.
		if srvHandled > 0 {
			res.Or = (srvBusy - replyCost) / sim.Duration(srvHandled)
		}
		res.L = res.RTT/2 - res.Os - res.Or

		// g: long burst of requests; steady-state time per message.
		burst := 8 * iters
		start := p.Now()
		target := replies + burst
		for i := 0; i < burst; i++ {
			client.Request(p, hEcho, [4]uint64{uint64(i)})
		}
		for replies < target {
			if client.Poll(p) == 0 {
				p.Sleep(200 * sim.Nanosecond)
			}
		}
		res.G = p.Now().Sub(start) / sim.Duration(burst)
	})

	for !done {
		e.RunFor(10 * sim.Millisecond)
	}
	return res
}

// Bandwidth measures delivered one-way bandwidth (MB/s, 1 MB = 1e6 B) for
// messages of the given payload size, streaming count messages.
func Bandwidth(e *sim.Engine, client, server Station, size, count int) float64 {
	acks := 0
	server.SetHandler(hSink, func(p *sim.Proc, rep Replier, args [4]uint64, _ []byte) {
		rep.Reply(p, hReply, args)
	})
	client.SetHandler(hReply, func(p *sim.Proc, rep Replier, args [4]uint64, _ []byte) {
		acks++
	})
	serverStop := false
	e.Spawn("bw-server", func(p *sim.Proc) {
		for !serverStop {
			if server.Poll(p) == 0 {
				p.Sleep(200 * sim.Nanosecond)
			}
		}
	})
	var mbps float64
	done := false
	e.Spawn("bw-client", func(p *sim.Proc) {
		defer func() { done = true; serverStop = true }()
		payload := make([]byte, size)
		// Warm-up.
		client.RequestBulk(p, hSink, payload, [4]uint64{})
		for acks < 1 {
			client.Poll(p)
			p.Sleep(sim.Microsecond)
		}
		start := p.Now()
		target := acks + count
		for i := 0; i < count; i++ {
			client.RequestBulk(p, hSink, payload, [4]uint64{})
		}
		for acks < target {
			if client.Poll(p) == 0 {
				p.Sleep(200 * sim.Nanosecond)
			}
		}
		elapsed := p.Now().Sub(start).Seconds()
		mbps = float64(size) * float64(count) / elapsed / 1e6
	})
	for !done {
		e.RunFor(10 * sim.Millisecond)
	}
	return mbps
}

// RTTBulk measures the round-trip time for an n-byte request echoed with an
// n-byte reply (the Fig. 4 latency line: time = 0.1112 n + 61.02 us on the
// paper's hardware).
func RTTBulk(e *sim.Engine, client, server Station, size, iters int) sim.Duration {
	replies := 0
	server.SetHandler(hEcho, func(p *sim.Proc, rep Replier, args [4]uint64, payload []byte) {
		rep.ReplyBulk(p, hReply, payload, args)
	})
	client.SetHandler(hReply, func(p *sim.Proc, rep Replier, args [4]uint64, _ []byte) {
		replies++
	})
	serverStop := false
	e.Spawn("rtt-server", func(p *sim.Proc) {
		for !serverStop {
			if server.Poll(p) == 0 {
				p.Sleep(200 * sim.Nanosecond)
			}
		}
	})
	var rtt sim.Duration
	done := false
	e.Spawn("rtt-client", func(p *sim.Proc) {
		defer func() { done = true; serverStop = true }()
		payload := make([]byte, size)
		var sum sim.Duration
		for i := 0; i < iters+1; i++ {
			target := replies + 1
			t0 := p.Now()
			client.RequestBulk(p, hEcho, payload, [4]uint64{})
			for replies < target {
				if client.Poll(p) == 0 {
					p.Sleep(200 * sim.Nanosecond)
				}
			}
			if i > 0 { // skip warm-up iteration
				sum += p.Now().Sub(t0)
			}
		}
		rtt = sum / sim.Duration(iters)
	})
	for !done {
		e.RunFor(10 * sim.Millisecond)
	}
	return rtt
}
