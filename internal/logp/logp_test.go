package logp

import (
	"testing"

	"virtnet/internal/core"
	"virtnet/internal/gam"
	"virtnet/internal/hostos"
	"virtnet/internal/netsim"
	"virtnet/internal/sim"
)

func amPair(t testing.TB) (*hostos.Cluster, Station, Station) {
	t.Helper()
	c := hostos.NewCluster(1, 2, hostos.DefaultClusterConfig())
	t.Cleanup(c.Shutdown)
	b0 := core.Attach(c.Nodes[0])
	b1 := core.Attach(c.Nodes[1])
	e0, _ := b0.NewEndpoint(1, 4)
	e1, _ := b1.NewEndpoint(2, 4)
	e0.Map(0, e1.Name(), 2)
	e1.Map(0, e0.Name(), 1)
	return c, AMStation{EP: e0, Idx: 0}, AMStation{EP: e1, Idx: 0}
}

func gamPair(t testing.TB) (*sim.Engine, Station, Station) {
	t.Helper()
	e := sim.NewEngine(1)
	net := netsim.New(e, netsim.DefaultConfig(), 2)
	w := gam.New(e, net, gam.DefaultConfig())
	t.Cleanup(func() { w.Stop(); e.Shutdown() })
	return e, GAMStation{N: w.Node(0), Dst: 1}, GAMStation{N: w.Node(1), Dst: 0}
}

func TestMeasureAM(t *testing.T) {
	c, cl, sv := amPair(t)
	r := Measure(c.E, cl, sv, 50)
	t.Logf("AM: Os=%.2fus Or=%.2fus L=%.2fus g=%.2fus RTT=%.2fus",
		r.Os.Micros(), r.Or.Micros(), r.L.Micros(), r.G.Micros(), r.RTT.Micros())
	if r.Os <= 0 || r.Or <= 0 || r.L <= 0 || r.G <= 0 {
		t.Fatalf("non-positive LogP parameter: %+v", r)
	}
	// Fig. 3 shape constraints for virtual networks.
	if r.Os < 3*sim.Microsecond || r.Os > 6*sim.Microsecond {
		t.Errorf("AM Os = %.2fus, expected ~3.8us", r.Os.Micros())
	}
	if r.G < 9*sim.Microsecond || r.G > 17*sim.Microsecond {
		t.Errorf("AM g = %.2fus, expected ~12.8us", r.G.Micros())
	}
}

func TestMeasureGAM(t *testing.T) {
	e, cl, sv := gamPair(t)
	r := Measure(e, cl, sv, 50)
	t.Logf("GAM: Os=%.2fus Or=%.2fus L=%.2fus g=%.2fus RTT=%.2fus",
		r.Os.Micros(), r.Or.Micros(), r.L.Micros(), r.G.Micros(), r.RTT.Micros())
	if r.G < 4*sim.Microsecond || r.G > 8*sim.Microsecond {
		t.Errorf("GAM g = %.2fus, expected ~5.8us", r.G.Micros())
	}
}

func TestFig3Ratios(t *testing.T) {
	c, amc, ams := amPair(t)
	am := Measure(c.E, amc, ams, 50)
	e, gmc, gms := gamPair(t)
	g := Measure(e, gmc, gms, 50)

	gapRatio := float64(am.G) / float64(g.G)
	rttRatio := float64(am.RTT) / float64(g.RTT)
	t.Logf("gap ratio = %.2f (paper 2.21), RTT ratio = %.2f (paper 1.23)", gapRatio, rttRatio)
	if gapRatio < 1.6 || gapRatio > 3.0 {
		t.Errorf("gap ratio %.2f out of range [1.6, 3.0] (paper: 2.21)", gapRatio)
	}
	if rttRatio < 1.05 || rttRatio > 1.6 {
		t.Errorf("RTT ratio %.2f out of range [1.05, 1.6] (paper: 1.23)", rttRatio)
	}
	// Total per-packet overhead remains roughly the same (paper: Os bigger,
	// Or smaller, sum unchanged).
	amOv := am.Os + am.Or
	gOv := g.Os + g.Or
	ratio := float64(amOv) / float64(gOv)
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("overhead sum ratio %.2f, expected ~1.0", ratio)
	}
}

func TestBandwidthAM(t *testing.T) {
	c, cl, sv := amPair(t)
	mbps := Bandwidth(c.E, cl, sv, 8192, 60)
	t.Logf("AM 8KB bandwidth = %.1f MB/s (paper: 43.9)", mbps)
	if mbps < 38 || mbps > 47 {
		t.Errorf("AM bandwidth %.1f MB/s out of range (paper: 43.9, HW limit 46.8)", mbps)
	}
}

func TestBandwidthGAM(t *testing.T) {
	e, cl, sv := gamPair(t)
	mbps := Bandwidth(e, cl, sv, 8192, 60)
	t.Logf("GAM 8KB bandwidth = %.1f MB/s (paper: 38)", mbps)
	if mbps < 32 || mbps > 43 {
		t.Errorf("GAM bandwidth %.1f MB/s out of range (paper: 38)", mbps)
	}
}

func TestBandwidthMonotonicInSize(t *testing.T) {
	var prev float64
	for _, size := range []int{128, 512, 2048, 8192} {
		c, cl, sv := amPair(t)
		mbps := Bandwidth(c.E, cl, sv, size, 40)
		t.Logf("AM %5dB: %.1f MB/s", size, mbps)
		if mbps <= prev {
			t.Errorf("bandwidth not increasing with size: %d B -> %.1f MB/s (prev %.1f)", size, mbps, prev)
		}
		prev = mbps
	}
}

func TestRTTBulkLinearInSize(t *testing.T) {
	c, cl, sv := amPair(t)
	r1 := RTTBulk(c.E, cl, sv, 1024, 10)
	c2, cl2, sv2 := amPair(t)
	r8 := RTTBulk(c2.E, cl2, sv2, 8192, 10)
	t.Logf("bulk RTT: 1KB=%.1fus 8KB=%.1fus", r1.Micros(), r8.Micros())
	if r8 <= r1 {
		t.Fatal("bulk RTT not increasing with size")
	}
	// Slope sanity: the paper's fit is 0.1112 us/B; ours should be within 2x.
	slope := float64(r8-r1) / float64(8192-1024) / 1000.0 // us per byte
	if slope < 0.05 || slope > 0.25 {
		t.Errorf("RTT slope %.4f us/B, paper 0.1112", slope)
	}
}
