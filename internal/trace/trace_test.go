package trace

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"virtnet/internal/sim"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("b", 5)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 5 {
		t.Fatalf("a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v, want first-touch order", names)
	}
	s := c.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "5") {
		t.Fatalf("String() = %q", s)
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %d", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %d", q)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %d", med)
	}
	if h.Mean() != 50 {
		t.Fatalf("mean = %d", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty hist should return zeros")
	}
	if !strings.Contains(h.Buckets(5), "no samples") {
		t.Fatal("empty buckets output wrong")
	}
}

func TestBimodalSplit(t *testing.T) {
	h := NewHist()
	// Fast mode around 30us, slow mode around 10ms.
	for i := 0; i < 70; i++ {
		h.Observe(30 * sim.Microsecond)
	}
	for i := 0; i < 30; i++ {
		h.Observe(10 * sim.Millisecond)
	}
	frac, fast, slow := h.BimodalSplit(sim.Millisecond)
	if frac < 0.69 || frac > 0.71 {
		t.Fatalf("fast fraction = %f, want 0.70", frac)
	}
	if fast != 30*sim.Microsecond {
		t.Fatalf("fast mean = %v", fast)
	}
	if slow != 10*sim.Millisecond {
		t.Fatalf("slow mean = %v", slow)
	}
}

func TestHistBuckets(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Observe(sim.Duration(i * 1000))
	}
	out := h.Buckets(8)
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 8 {
		t.Fatalf("bucket lines:\n%s", out)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(0)
	for i := 1; i <= 10; i++ {
		m.Tick(sim.Time(i)*sim.Time(sim.Millisecond), 1000)
	}
	m.Close(sim.Time(10 * sim.Millisecond))
	if m.Count() != 10 {
		t.Fatalf("count = %d", m.Count())
	}
	if r := m.Rate(); r < 999 || r > 1001 {
		t.Fatalf("rate = %f, want 1000/s", r)
	}
	if mb := m.MBps(); mb < 0.99 || mb > 1.01 {
		t.Fatalf("MBps = %f, want 1.0", mb)
	}
}

func TestMeterEmptyWindow(t *testing.T) {
	m := NewMeter(5)
	if m.Rate() != 0 || m.Throughput() != 0 {
		t.Fatal("empty meter should report zero rates")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHist()
		for _, v := range vals {
			h.Observe(sim.Duration(v))
		}
		prev := sim.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			cur := h.Quantile(q)
			if cur < prev || cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: counters sum correctly under arbitrary add sequences.
func TestCounterSumProperty(t *testing.T) {
	f := func(adds []int16) bool {
		c := NewCounters()
		var want int64
		for _, a := range adds {
			c.Add("x", int64(a))
			want += int64(a)
		}
		return c.Get("x") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(100, 10)
	tl.Add(100, 1)
	tl.Add(105, 2)
	tl.Add(115, 4)
	tl.Add(139, 8)
	tl.Add(50, 99) // before start: ignored
	s := tl.Series()
	want := []float64{3, 4, 0, 8}
	if len(s) != len(want) {
		t.Fatalf("series = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("series = %v, want %v", s, want)
		}
	}
	r := tl.Rates()
	if r[0] != 3/sim.Duration(10).Seconds() {
		t.Fatalf("rates = %v", r)
	}
	if tl.String() == "" {
		t.Fatal("empty string render")
	}
}

func TestHistReservoirBoundsMemoryExactAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistReservoir(64, rng)
	const n = 10_000
	var sum int64
	for i := 1; i <= n; i++ {
		h.Observe(sim.Duration(i))
		sum += int64(i)
	}
	if h.Retained() != 64 {
		t.Fatalf("retained = %d, want capacity 64", h.Retained())
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d (exact despite reservoir)", h.Count(), n)
	}
	if h.Mean() != sim.Duration(sum/int64(n)) {
		t.Fatalf("mean = %v, want exact %v", h.Mean(), sim.Duration(sum/int64(n)))
	}
	if h.Min() != 1 || h.Max() != sim.Duration(n) {
		t.Fatalf("min/max = %v/%v, want exact 1/%d", h.Min(), h.Max(), n)
	}
	// The reservoir is a uniform subset: its median should land in the
	// middle half of a uniform stream (loose sanity bound, deterministic
	// for this seed).
	med := h.Quantile(0.5)
	if med < n/4 || med > 3*n/4 {
		t.Fatalf("reservoir median %v implausible for uniform stream of %d", med, n)
	}
	if h.Buckets(10) == "(no samples)\n" {
		t.Fatal("buckets empty")
	}
}

func TestHistReservoirDeterministicPerSeed(t *testing.T) {
	run := func() []sim.Duration {
		h := NewHistReservoir(16, rand.New(rand.NewSource(42)))
		for i := 0; i < 1000; i++ {
			h.Observe(sim.Duration(i * 3))
		}
		return append([]sim.Duration(nil), h.samples...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHistUnboundedStillExact(t *testing.T) {
	h := NewHist()
	for _, v := range []sim.Duration{5, 1, 9, 3} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Retained() != 4 {
		t.Fatalf("count/retained = %d/%d", h.Count(), h.Retained())
	}
	if h.Min() != 1 || h.Max() != 9 || h.Mean() != 4 {
		t.Fatalf("min/max/mean = %v/%v/%v", h.Min(), h.Max(), h.Mean())
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 9 {
		t.Fatalf("quantiles broken: %v %v", h.Quantile(0), h.Quantile(1))
	}
}

func TestSummaryZeroSafe(t *testing.T) {
	h := NewHist()
	if got := h.Summary(); got != "n=0 (no samples)" {
		t.Fatalf("empty summary = %q", got)
	}
	for _, s := range []string{h.Summary(), h.Buckets(4)} {
		if strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
			t.Fatalf("zero-sample rendering leaks garbage: %q", s)
		}
	}
	h.Observe(10)
	h.Observe(30)
	got := h.Summary()
	// Interpolated quantiles: p50 of {10,30} is the midpoint, p99 sits
	// 98% of the way between them (10 + 0.98*20 = 29.6, rounded to 30).
	want := "n=2 mean=20ns p50=20ns p99=30ns p999=30ns min=10ns max=30ns"
	if got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
	if h.Quantile(-0.5) != 10 || h.Quantile(2.0) != 30 {
		t.Fatalf("out-of-range quantiles not clamped: %v %v", h.Quantile(-0.5), h.Quantile(2.0))
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHist()
	for _, v := range []sim.Duration{100, 200, 300, 400} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want sim.Duration
	}{
		{0, 100},
		{1, 400},
		{0.5, 250},        // position 1.5: midpoint of 200 and 300
		{0.25, 175},       // position 0.75: 100 + 0.75*(200-100)
		{1.0 / 3.0, 200},  // position 1.0: exact order statistic
		{0.99, 397},       // position 2.97: 300 + 0.97*(400-300)
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// Regression: at 1e6 observations a 4096-sample reservoir has diluted the
// tail to ~4 samples above p999 — before exact tail retention Quantile(0.999)
// was off by orders of magnitude on skewed streams. The top-K tail keeps the
// largest DefaultTailCap (2048 = top ~0.2%) samples exactly, so p999 must
// now match a full-retention reference bit-for-bit.
func TestReservoirTailExactP999At1e6(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-observation regression test")
	}
	const n = 1_000_000
	gen := rand.New(rand.NewSource(99))
	ref := NewHist()
	res := NewHistReservoir(4096, rand.New(rand.NewSource(7)))
	for i := 0; i < n; i++ {
		// Heavy-tailed stream: mostly ~1ms with a 1-in-500 tail up to ~1s.
		d := sim.Duration(1+gen.Int63n(int64(sim.Millisecond))) //nolint
		if gen.Intn(500) == 0 {
			d += sim.Duration(gen.Int63n(int64(sim.Second)))
		}
		ref.Observe(d)
		res.Observe(d)
	}
	for _, q := range []float64{0.999, 0.9995, 0.9999, 1.0} {
		want, got := ref.Quantile(q), res.Quantile(q)
		if got != want {
			t.Errorf("Quantile(%v) = %v, want exact %v", q, got, want)
		}
	}
	// The reservoir estimate for mid quantiles must still come from the
	// uniform sample, not the tail (p50 of this stream is ~0.5ms; the tail
	// minimum is far above it).
	if med := res.Quantile(0.5); med > 2*sim.Millisecond {
		t.Errorf("median %v looks tail-contaminated", med)
	}
	if !strings.Contains(res.Summary(), "p999=") {
		t.Errorf("Summary missing p999: %q", res.Summary())
	}
	if want := fmt.Sprintf("p999=%v", ref.Quantile(0.999)); !strings.Contains(res.Summary(), want) {
		t.Errorf("Summary p999 not exact: %q missing %q", res.Summary(), want)
	}
}

// The exact tail must survive interleaved Quantile calls (which sort the
// heap in place) and continue absorbing later, larger samples.
func TestReservoirTailSurvivesInterleavedQueries(t *testing.T) {
	h := NewHistReservoir(32, rand.New(rand.NewSource(3)))
	h.SetTailCap(8)
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i))
		if i%10 == 0 {
			h.Quantile(0.99) // sorts the tail mid-stream
		}
	}
	// Largest 8 of 1..100 are 93..100; p((n-1-k)/(n-1)) hits them exactly.
	for k := 0; k < 8; k++ {
		q := float64(99-k) / 99
		want := sim.Duration(100 - k)
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want exact %v", q, got, want)
		}
	}
}

func TestCountersSnapshot(t *testing.T) {
	c := NewCounters()
	c.Inc("z")
	c.Add("a", 3)
	c.Inc("z")
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0] != (CounterKV{"z", 2}) || snap[1] != (CounterKV{"a", 3}) {
		t.Fatalf("snapshot = %v, want first-touch order [z=2 a=3]", snap)
	}
}
