// Package trace provides lightweight instrumentation for the simulated
// cluster: named counters, duration histograms (used to show the bimodal
// client latencies of §6.4.1), and windowed rate meters.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"virtnet/internal/sim"
)

// Counters is a set of named monotonic counters. The simulation itself is
// single-threaded, but observers (metric snapshots, daemon status queries)
// may read from other goroutines, so access is mutex-guarded.
type Counters struct {
	mu    sync.Mutex
	m     map[string]int64
	order []string
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments counter name by n.
func (c *Counters) Add(name string, n int64) {
	c.mu.Lock()
	if _, ok := c.m[name]; !ok {
		c.order = append(c.order, name)
	}
	c.m[name] += n
	c.mu.Unlock()
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of counter name (zero if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns counter names in first-touch order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// CounterKV is one counter's name and value, as returned by Snapshot.
type CounterKV struct {
	Name  string
	Value int64
}

// Snapshot returns every counter in first-touch order. The order is
// deterministic per seed (it is the order the code first touched each
// counter), which makes snapshots safe to feed into golden outputs.
func (c *Counters) Snapshot() []CounterKV {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CounterKV, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, CounterKV{Name: n, Value: c.m[n]})
	}
	return out
}

// String renders all counters, one per line, in first-touch order.
func (c *Counters) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	for _, n := range c.order {
		fmt.Fprintf(&b, "%-32s %12d\n", n, c.m[n])
	}
	return b.String()
}

// Hist is a histogram over sim.Duration samples. By default it keeps every
// raw sample (the experiments record at most a few hundred thousand) so
// exact quantiles and modality analysis are available; NewHistReservoir
// bounds memory for long soak and migration-churn runs by keeping a uniform
// random sample instead. Count, Mean, Min, and Max are exact in both modes;
// quantiles and bucket renderings are computed over whatever is retained.
//
// Reservoir mode additionally retains the exact top TailCap samples of the
// stream (a classic top-K min-heap), so extreme upper quantiles — the p999
// the serving-workload SLOs report — stay exact long after the uniform
// reservoir has diluted the tail: Quantile(q) answers from the exact tail
// whenever the order statistics it needs fall within the retained top
// samples (q >= 1 - TailCap/n, roughly n <= 2M observations for p999 at the
// default TailCap of 2048), and falls back to the reservoir estimate below
// that.
type Hist struct {
	samples []sim.Duration
	sorted  bool

	// Reservoir mode (capacity > 0): samples is a uniform random subset of
	// the stream, maintained with Vitter's Algorithm R.
	capacity int
	rng      *rand.Rand

	// Exact tail (reservoir mode): tail is a min-heap of the largest
	// tailCap stream samples. tailSorted marks that it is currently fully
	// sorted ascending (a sorted slice is still a valid min-heap).
	tailCap    int
	tail       []sim.Duration
	tailSorted bool

	// Exact stream aggregates, maintained in both modes.
	n        int64
	sum      int64
	min, max sim.Duration

	// nearestRank pins Quantile to the legacy truncate-to-lower-order-
	// statistic definition. Interpolation is the default; experiments whose
	// committed golden outputs predate the fix opt back in per histogram.
	nearestRank bool
}

// DefaultTailCap is the exact-tail retention of a reservoir histogram:
// 2048 samples keeps the top ~0.2% of a million-observation stream exactly.
const DefaultTailCap = 2048

// NewHist returns an empty histogram that retains every sample.
func NewHist() *Hist { return &Hist{} }

// NewHistReservoir returns a histogram that retains at most capacity
// samples, chosen uniformly at random from the observed stream, plus the
// exact top DefaultTailCap samples for tail quantiles. rng must be
// the simulation engine's PRNG (sim.Engine.Rand) so runs stay
// bit-reproducible per seed.
func NewHistReservoir(capacity int, rng *rand.Rand) *Hist {
	if capacity <= 0 {
		panic("trace: reservoir capacity must be positive")
	}
	if rng == nil {
		panic("trace: reservoir needs the engine PRNG")
	}
	return &Hist{capacity: capacity, rng: rng, tailCap: DefaultTailCap,
		samples: make([]sim.Duration, 0, capacity)}
}

// SetTailCap resizes the exact-tail retention of a reservoir histogram
// (0 disables it). Must be called before the first Observe.
func (h *Hist) SetTailCap(k int) {
	if h.n > 0 {
		panic("trace: SetTailCap after Observe")
	}
	h.tailCap = k
}

// Observe records one sample.
func (h *Hist) Observe(d sim.Duration) {
	h.n++
	h.sum += int64(d)
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if h.n == 1 || d > h.max {
		h.max = d
	}
	if h.capacity > 0 {
		h.observeTail(d)
		if len(h.samples) == h.capacity {
			// Algorithm R: the i-th sample replaces a random slot with
			// probability capacity/i, keeping the reservoir uniform.
			if j := h.rng.Int63n(h.n); j < int64(h.capacity) {
				h.samples[j] = d
				h.sorted = false
			}
			return
		}
	}
	h.samples = append(h.samples, d)
	h.sorted = false
}

// observeTail folds d into the top-K min-heap. With fewer than tailCap
// retained the sample is always kept; after that it displaces the heap
// minimum only if larger, so tail always holds exactly the K largest
// stream samples.
func (h *Hist) observeTail(d sim.Duration) {
	if h.tailCap <= 0 {
		return
	}
	if len(h.tail) < h.tailCap {
		h.tail = append(h.tail, d)
		h.tailSorted = false
		// Sift up.
		for i := len(h.tail) - 1; i > 0; {
			parent := (i - 1) / 2
			if h.tail[parent] <= h.tail[i] {
				break
			}
			h.tail[parent], h.tail[i] = h.tail[i], h.tail[parent]
			i = parent
		}
		return
	}
	if d <= h.tail[0] {
		return
	}
	// Replace the minimum and sift down.
	h.tail[0] = d
	h.tailSorted = false
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.tail) && h.tail[l] < h.tail[small] {
			small = l
		}
		if r < len(h.tail) && h.tail[r] < h.tail[small] {
			small = r
		}
		if small == i {
			break
		}
		h.tail[i], h.tail[small] = h.tail[small], h.tail[i]
		i = small
	}
}

// Count returns the number of observed samples (exact in reservoir mode).
func (h *Hist) Count() int { return int(h.n) }

// Retained returns how many samples are held in memory.
func (h *Hist) Retained() int { return len(h.samples) }

// Samples returns the retained samples (every sample in full-retention
// mode) — callers merging per-client histograms re-observe these into the
// combined histogram. The returned slice is shared; do not mutate.
func (h *Hist) Samples() []sim.Duration { return h.samples }

func (h *Hist) sortSamples() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the retained samples
// using linear interpolation between adjacent order statistics: the quantile
// position is q·(n−1), and a fractional position blends the two neighboring
// samples proportionally (the "linear" definition used by numpy and R type
// 7). The previous implementation truncated the position to the lower order
// statistic, which biased every non-integer quantile low — visibly so for
// p99 over small sample counts.
//
// In reservoir mode, quantiles whose order statistics fall within the exact
// top-K tail (q high enough that q·(n−1) lands in the stream's largest
// tailCap samples) are computed from the tail and are exact over the full
// stream, not an estimate — this is what keeps p999 trustworthy at millions
// of observations when the uniform reservoir holds only a few thousand.
func (h *Hist) Quantile(q float64) sim.Duration {
	if d, ok := h.tailQuantile(q); ok {
		return d
	}
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	pos := q * float64(len(h.samples)-1)
	i := int(pos)
	if h.nearestRank {
		return h.samples[i]
	}
	frac := pos - float64(i)
	if frac == 0 || i+1 >= len(h.samples) {
		return h.samples[i]
	}
	lo, hi := h.samples[i], h.samples[i+1]
	return lo + sim.Duration(frac*float64(hi-lo)+0.5)
}

// tailQuantile answers Quantile(q) exactly from the top-K tail when the
// needed order statistics of the full stream are retained there. It only
// engages once the reservoir is lossy (n > retained samples); before that
// the reservoir itself is exact and cheaper to reuse.
func (h *Hist) tailQuantile(q float64) (sim.Duration, bool) {
	if len(h.tail) == 0 || h.n <= int64(len(h.samples)) {
		return 0, false
	}
	if q >= 1 {
		return h.max, true
	}
	n := h.n
	pos := q * float64(n-1)
	i := int64(pos)
	first := n - int64(len(h.tail)) // global index of tail[0] once sorted
	if i < first {
		return 0, false
	}
	// A sorted ascending slice satisfies the min-heap invariant, so sorting
	// in place keeps observeTail correct.
	if !h.tailSorted {
		sort.Slice(h.tail, func(a, b int) bool { return h.tail[a] < h.tail[b] })
		h.tailSorted = true
	}
	j := int(i - first)
	if h.nearestRank {
		return h.tail[j], true
	}
	frac := pos - float64(i)
	if frac == 0 || j+1 >= len(h.tail) {
		return h.tail[j], true
	}
	lo, hi := h.tail[j], h.tail[j+1]
	return lo + sim.Duration(frac*float64(hi-lo)+0.5), true
}

// SetNearestRank switches Quantile between linear interpolation (default)
// and the legacy lower-order-statistic definition.
func (h *Hist) SetNearestRank(on bool) { h.nearestRank = on }

// Mean returns the mean sample value (exact in reservoir mode).
func (h *Hist) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return sim.Duration(h.sum / h.n)
}

// Min and Max return stream extremes (exact in reservoir mode).
func (h *Hist) Min() sim.Duration { return h.min }
func (h *Hist) Max() sim.Duration { return h.max }

// Summary renders the histogram on one line: sample count, mean, median,
// p99, p999, and stream extremes. With no samples it says so instead of
// emitting zero-division garbage — fault experiments legitimately produce
// empty histograms (e.g. "latency of requests answered during the outage").
func (h *Hist) Summary() string {
	if h.n == 0 {
		return "n=0 (no samples)"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v min=%v max=%v",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999), h.min, h.max)
}

// BimodalSplit splits samples around threshold and returns the fraction and
// mean of each mode. The §6.4.1 analysis uses this to show that requests
// hitting resident endpoints complete quickly while others pay remapping and
// retransmission delays.
func (h *Hist) BimodalSplit(threshold sim.Duration) (fastFrac float64, fastMean, slowMean sim.Duration) {
	if len(h.samples) == 0 {
		return 0, 0, 0
	}
	var nf, ns int
	var sf, ss int64
	for _, s := range h.samples {
		if s <= threshold {
			nf++
			sf += int64(s)
		} else {
			ns++
			ss += int64(s)
		}
	}
	if nf > 0 {
		fastMean = sim.Duration(sf / int64(nf))
	}
	if ns > 0 {
		slowMean = sim.Duration(ss / int64(ns))
	}
	return float64(nf) / float64(len(h.samples)), fastMean, slowMean
}

// Buckets renders a log-scale ASCII histogram with n buckets.
func (h *Hist) Buckets(n int) string {
	if len(h.samples) == 0 || n <= 0 {
		return "(no samples)\n"
	}
	h.sortSamples()
	lo := float64(h.samples[0])
	hi := float64(h.samples[len(h.samples)-1])
	if lo <= 0 {
		lo = 1
	}
	if hi <= lo {
		hi = lo * 2
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	counts := make([]int, n)
	for _, s := range h.samples {
		v := float64(s)
		if v < lo {
			v = lo
		}
		i := int(float64(n) * (math.Log(v) - logLo) / (logHi - logLo + 1e-12))
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		lower := sim.Duration(math.Exp(logLo + (logHi-logLo)*float64(i)/float64(n)))
		bar := strings.Repeat("#", c*50/maxInt(max, 1))
		fmt.Fprintf(&b, "%12v %6d %s\n", lower, c, bar)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Timeline accumulates samples into fixed time intervals, for reporting how
// a rate evolves over a run (e.g. §6.4.1's sustained re-mapping rate).
type Timeline struct {
	start    sim.Time
	interval sim.Duration
	buckets  []float64
}

// NewTimeline starts a timeline at start with the given bucket width.
func NewTimeline(start sim.Time, interval sim.Duration) *Timeline {
	return &Timeline{start: start, interval: interval}
}

// Add accumulates v into the bucket containing time t.
func (tl *Timeline) Add(t sim.Time, v float64) {
	if t < tl.start {
		return
	}
	i := int(t.Sub(tl.start) / tl.interval)
	for len(tl.buckets) <= i {
		tl.buckets = append(tl.buckets, 0)
	}
	tl.buckets[i] += v
}

// Series returns the per-bucket totals.
func (tl *Timeline) Series() []float64 { return append([]float64(nil), tl.buckets...) }

// Rates returns per-bucket totals divided by the bucket width in seconds.
func (tl *Timeline) Rates() []float64 {
	out := make([]float64, len(tl.buckets))
	w := tl.interval.Seconds()
	for i, v := range tl.buckets {
		out[i] = v / w
	}
	return out
}

// String renders the per-bucket rates on one line.
func (tl *Timeline) String() string {
	var b strings.Builder
	for i, r := range tl.Rates() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.0f", r)
	}
	return b.String()
}

// Meter measures an event rate over the whole observation window.
type Meter struct {
	n     int64
	bytes int64
	start sim.Time
	end   sim.Time
	open  bool
}

// NewMeter returns a meter with its window opening at t.
func NewMeter(t sim.Time) *Meter { return &Meter{start: t, end: t, open: true} }

// Tick records one event of size bytes at time t.
func (m *Meter) Tick(t sim.Time, bytes int) {
	m.n++
	m.bytes += int64(bytes)
	if t > m.end {
		m.end = t
	}
}

// Close fixes the window end at t.
func (m *Meter) Close(t sim.Time) {
	if t > m.end {
		m.end = t
	}
	m.open = false
}

// Count returns the number of recorded events.
func (m *Meter) Count() int64 { return m.n }

// Rate returns events per simulated second.
func (m *Meter) Rate() float64 {
	w := m.end.Sub(m.start).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(m.n) / w
}

// Throughput returns bytes per simulated second.
func (m *Meter) Throughput() float64 {
	w := m.end.Sub(m.start).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(m.bytes) / w
}

// MBps returns throughput in MB/s (1 MB = 1e6 bytes, as the paper reports).
func (m *Meter) MBps() float64 { return m.Throughput() / 1e6 }
