package main

import (
	"fmt"
	"sort"

	"virtnet/internal/core"
	"virtnet/internal/fault"
	"virtnet/internal/glunix"
	"virtnet/internal/hostos"
	"virtnet/internal/migrate"
	"virtnet/internal/netsim"
	"virtnet/internal/nic"
	"virtnet/internal/sim"
	"virtnet/internal/trace"
)

// runFaults is the cluster-wide fault-injection and automated-recovery
// experiment (DESIGN.md S21): 16 clients stream small requests at two server
// replicas on a 20-node cluster while a scripted fault plan runs — a spine
// switch goes dark and is repaired, then a whole node (hosting one replica
// and a gang-job rank) crashes. The GLUnix health monitor declares the node
// dead from missed heartbeats, requeues its batch job, drops its name-service
// bindings, and a registered recovery hook respawns the lost replica on a
// spare node; clients re-bind and re-issue. A live migration of the surviving
// replica runs mid-stream to show planned movement composing with failure
// recovery. Reported: per-window aggregate throughput (the dip-and-recover
// curve), recovery ratio vs the pre-fault baseline, and exactly-once
// accounting — zero lost, zero duplicated user-level messages.
func runFaults() {
	header("fault injection and automated recovery — dip and recover")
	const (
		nodes    = 20
		keyA     = core.Key(77)
		keyB     = core.Key(78)
		hReq     = 1
		hRep     = 2
		homeNode = 0  // health-monitor master (outside the fault domain)
		nodeA    = 3  // replica A: survives, live-migrates mid-run
		nodeB    = 14 // replica B: crashes with its node
		spareN   = 17 // recovery hook respawns replica B here
		moveDst  = 5  // replica A migrates here at 650 ms
		window   = 20 * sim.Millisecond
		sendGap  = 250 * sim.Microsecond
		maxOut   = 8 // per-client outstanding-request cap
		// A request whose reply bounced back to the server leaves no trace
		// at the client: no return, no reply. The transport gives up within
		// ~ReturnToSenderAfter (200 ms), so a serial still unanswered this
		// long after its send can never be answered by the original
		// exchange and is safe to re-issue without risking a duplicate.
		reissueAfter = 500 * sim.Millisecond
		// Spine 0 carries nearly all steady-state inter-leaf traffic (each
		// stop-and-wait flow rides its lowest channel, and channel index
		// selects the route), so failing it forces the §5.1 rebind onto
		// other spines.
		plan = "spine:0@200ms+150ms,crash:node14@500ms"
	)
	sendUntil := sim.Time(0).Add(1 * sim.Second)
	gap := sendGap
	clientNodes := []int{1, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 18, 19}
	if *quick {
		clientNodes = clientNodes[:8]
		gap = 500 * sim.Microsecond
	}

	c := hostos.NewCluster(*seed, nodes, hostos.DefaultClusterConfig())
	defer c.Shutdown()
	sched := glunix.NewScheduler(c)
	svc, err := migrate.NewService(c)
	if err != nil {
		fmt.Printf("migration service: %v\n", err)
		return
	}
	mon, err := glunix.NewMonitor(c, sched, svc.Dir, homeNode, glunix.DefaultMonitorConfig())
	if err != nil {
		fmt.Printf("health monitor: %v\n", err)
		return
	}

	// Replica servers: an echo service with two replicas. Clients pin to one
	// replica; the published registry tells them where their replica lives
	// and bumps a generation when recovery moves it.
	type replicaInfo struct {
		name core.EndpointName
		key  core.Key
		gen  int
	}
	registry := make([]replicaInfo, 2)
	served := make([]int, 3) // A, B, B-replacement
	lostReplies := 0         // server replies returned by the fabric

	startReplica := func(node int, key core.Key, slot int, servedIdx int, manage bool) *core.Endpoint {
		b := core.Attach(c.Nodes[node])
		b.SetResolver(svc.Dir)
		ep, err := b.NewEndpoint(key, 8)
		if err != nil {
			fmt.Printf("replica endpoint: %v\n", err)
			return nil
		}
		ep.SetHandler(hReq, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
			served[servedIdx]++
			tok.Reply(p, hRep, args)
		})
		// A reply that bounces (e.g. its spine died before the ack) comes
		// back here; the server has no route back to the client beyond the
		// reply token, so recovery is the client's job (§3.2's end-to-end
		// argument). Count them: each must be healed by a client re-issue.
		ep.SetReturnHandler(func(p *sim.Proc, _ nic.NackReason, _, _ int, _ [4]uint64, _ []byte) {
			lostReplies++
		})
		cur := ep
		if manage {
			svc.Manage(ep, func(n *core.Endpoint) { cur = n })
		}
		c.Nodes[node].Spawn("replica", func(p *sim.Proc) {
			for {
				cur.Poll(p)
				p.Sleep(10 * sim.Microsecond)
			}
		})
		registry[slot] = replicaInfo{name: ep.Name(), key: key, gen: registry[slot].gen + 1}
		return ep
	}
	repA := startReplica(nodeA, keyA, 0, 0, true)
	repB := startReplica(nodeB, keyB, 1, 1, false)
	if repA == nil || repB == nil {
		return
	}
	epIDA := repA.Segment().EP.ID
	// Publish replica B in the name service so the monitor's DropNode has a
	// binding to withdraw when its node dies.
	svc.Dir.Publish(repB.Segment().EP.ID, netsim.NodeID(nodeB))

	// Recovery hook: when a node is declared dead, respawn the replica that
	// lived there on the spare node and bump the registry generation.
	mon.OnDead(func(p *sim.Proc, node int) {
		if node != nodeB {
			return
		}
		if ep := startReplica(spareN, keyB, 1, 2, false); ep != nil {
			fmt.Printf("t=%-7v recovery hook: replica B respawned on node %d (gen %d)\n",
				c.E.Now(), spareN, registry[1].gen)
		}
	})

	// Clients: a fixed serial stream to their replica. Returned serials are
	// re-issued; a registry generation bump (replica respawned elsewhere)
	// re-binds the translation and sweeps every unanswered serial into the
	// retry queue — covering messages the dead node had accepted but not yet
	// served, which are bounded by the outstanding window and can never be
	// answered by anyone else (the transport's end-to-end dedup makes the
	// sweep duplicate-free).
	tl := trace.NewTimeline(0, window)
	type fclient struct {
		idx     int
		replica int
		ep      *core.Endpoint
		gen     int
		next    uint64
		replies map[uint64]int
		pending map[uint64]sim.Time // unanswered serials and their last send time
		retry   []uint64
		inRetry map[uint64]bool
		answered, dup, returns, resends int
		done    bool
	}
	clients := make([]*fclient, len(clientNodes))
	for i, node := range clientNodes {
		cs := &fclient{idx: i, replica: i % 2, next: 1,
			replies: make(map[uint64]int), pending: make(map[uint64]sim.Time),
			inRetry: make(map[uint64]bool)}
		clients[i] = cs
		b := core.Attach(c.Nodes[node])
		b.SetResolver(svc.Dir)
		ep, err := b.NewEndpoint(core.Key(1000+node), 8)
		if err != nil {
			fmt.Printf("client endpoint: %v\n", err)
			return
		}
		cs.ep = ep
		ep.SetHandler(hRep, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
			s := args[0]
			cs.replies[s]++
			delete(cs.pending, s)
			if cs.replies[s] == 1 {
				cs.answered++
				tl.Add(p.Now(), 1)
			} else {
				cs.dup++
			}
		})
		ep.SetReturnHandler(func(p *sim.Proc, _ nic.NackReason, _, _ int, args [4]uint64, _ []byte) {
			s := args[0]
			cs.returns++
			if cs.replies[s] == 0 && !cs.inRetry[s] {
				cs.inRetry[s] = true
				cs.retry = append(cs.retry, s)
			}
		})
		ri := registry[cs.replica]
		cs.gen = ri.gen
		if err := ep.Map(0, ri.name, ri.key); err != nil {
			fmt.Printf("client map: %v\n", err)
			return
		}
		c.Nodes[node].Spawn("client", func(p *sim.Proc) {
			for {
				if ri := registry[cs.replica]; ri.gen != cs.gen {
					cs.gen = ri.gen
					cs.ep.Map(0, ri.name, ri.key)
					for s := uint64(1); s < cs.next; s++ {
						if cs.replies[s] == 0 && !cs.inRetry[s] {
							cs.inRetry[s] = true
							cs.retry = append(cs.retry, s)
						}
					}
				}
				// End-to-end timeout: re-issue serials whose reply was lost at
				// the server side (no return ever reaches the client). Sorted
				// for per-seed determinism.
				var stale []uint64
				for s, at := range cs.pending {
					if p.Now().Sub(at) > reissueAfter && cs.replies[s] == 0 && !cs.inRetry[s] {
						stale = append(stale, s)
					}
				}
				sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
				for _, s := range stale {
					cs.inRetry[s] = true
					cs.retry = append(cs.retry, s)
				}
				outstanding := int(cs.next-1) - cs.answered - len(cs.retry)
				switch {
				case len(cs.retry) > 0:
					s := cs.retry[0]
					cs.retry = cs.retry[1:]
					delete(cs.inRetry, s)
					if cs.replies[s] == 0 {
						cs.resends++
						cs.pending[s] = p.Now()
						cs.ep.Request(p, 0, hReq, [4]uint64{s, uint64(cs.idx)})
					}
				case p.Now() < sendUntil && outstanding < maxOut:
					s := cs.next
					cs.next++
					cs.pending[s] = p.Now()
					cs.ep.Request(p, 0, hReq, [4]uint64{s, uint64(cs.idx)})
				case p.Now() >= sendUntil && outstanding == 0:
					cs.done = true
					for {
						cs.ep.Poll(p)
						p.Sleep(sim.Millisecond)
					}
				}
				cs.ep.Poll(p)
				p.Sleep(gap)
			}
		})
	}

	// Batch layer: two waves of gang jobs covering every node; the rank on
	// the crashing node takes its job down, and the scheduler requeues it.
	submitWave := func() {
		for i := 0; i < 4; i++ {
			sched.Submit(5, func(p *sim.Proc, rank int, _ []*hostos.Node) {
				p.Sleep(300 * sim.Millisecond)
			})
		}
	}
	submitWave()
	c.E.Schedule(350*sim.Millisecond, submitWave)

	// Planned movement mid-recovery: replica A live-migrates while the
	// cluster is still absorbing the crash.
	var moveStats *migrate.MoveStats
	c.Nodes[homeNode].Spawn("mover", func(p *sim.Proc) {
		p.Sleep(650 * sim.Millisecond)
		h, ok := svc.Endpoint(epIDA)
		if !ok {
			return
		}
		s, err := svc.Move(p, h, netsim.NodeID(moveDst))
		if err != nil {
			fmt.Printf("move: %v\n", err)
			return
		}
		moveStats = s
	})

	// The scripted faults.
	pl, err := fault.Parse(plan)
	if err != nil {
		fmt.Printf("fault plan: %v\n", err)
		return
	}
	pl.Apply(c)
	fmt.Printf("plan: %s\n", pl)
	fmt.Printf("%d clients x 2 replicas (A on node %d, B on node %d), monitor home node %d\n",
		len(clients), nodeA, nodeB, homeNode)

	deadline := sim.Time(0).Add(8 * sim.Second)
	for c.E.Now() < deadline {
		c.E.RunFor(50 * sim.Millisecond)
		alldone := true
		for _, cs := range clients {
			alldone = alldone && cs.done
		}
		if alldone {
			break
		}
	}

	// Throughput series: replies per 20 ms window across all clients.
	series := tl.Series()
	if len(series) > 50 {
		series = series[:50] // the send phase; the drain tail is quiet
	}
	fmt.Println("replies per 20 ms window (faults at 200 ms and 500 ms):")
	for i := 0; i < len(series); i += 10 {
		end := i + 10
		if end > len(series) {
			end = len(series)
		}
		fmt.Printf("  %4dms:", i*20)
		for _, v := range series[i:end] {
			fmt.Printf(" %5.0f", v)
		}
		fmt.Println()
	}
	mean := func(lo, hi int) float64 {
		sum := 0.0
		for i := lo; i < hi && i < len(series); i++ {
			sum += series[i]
		}
		return sum / float64(hi-lo)
	}
	pre := mean(2, 10)   // 40–200 ms: steady state before the first fault
	post := mean(40, 50) // 800 ms–1 s: after repair, evacuation, migration
	ratio := 0.0
	if pre > 0 {
		ratio = post / pre
	}
	verdict := "PASS"
	if ratio < 0.9 {
		verdict = "FAIL"
	}
	fmt.Printf("throughput: pre-fault %.0f replies/window, post-recovery %.0f (%.0f%% — need >= 90%%): %s\n",
		pre, post, 100*ratio, verdict)

	// Exactly-once accounting.
	sent, answered, lost, dup, returns, resends := 0, 0, 0, 0, 0, 0
	for _, cs := range clients {
		sent += int(cs.next - 1)
		answered += cs.answered
		dup += cs.dup
		returns += cs.returns
		resends += cs.resends
		for s := uint64(1); s < cs.next; s++ {
			if cs.replies[s] == 0 {
				lost++
			}
		}
	}
	verdict = "PASS"
	if lost != 0 || dup != 0 {
		verdict = "FAIL"
	}
	fmt.Printf("exactly-once: %d sent, %d answered — lost %d, duplicates %d (both must be 0): %s\n",
		sent, answered, lost, dup, verdict)
	fmt.Printf("recovery path: %d returns absorbed, %d server replies bounced, %d re-issues, served A/B/B' = %d/%d/%d\n",
		returns, lostReplies, resends, served[0], served[1], served[2])
	fmt.Printf("monitor: %d death(s) declared, %d heartbeats; scheduler: %d jobs done, %d requeued\n",
		mon.Deaths, mon.Beats, sched.Completed, sched.Requeued)
	fmt.Printf("name service: %d binding(s) dropped for the dead node\n",
		svc.Dir.C.Get("dir.drop_node"))
	if moveStats != nil {
		fmt.Printf("live migration under recovery load: %d -> %d, blackout %v, %d bytes\n",
			nodeA, moveDst, moveStats.Blackout, moveStats.Bytes)
	}
	// Per-link loss attribution for the faulted elements, from the
	// structured per-link counters.
	fmt.Printf("lossy links:\n%s", indent(netsim.RenderLinkCounters(c.Net.PerLinkCounters(), true)))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		if line != "" {
			out += "  " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
