// Command vnbench regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cluster. Each subcommand prints the rows
// or series the paper reports:
//
//	vnbench logp              Fig. 3  LogP parameters, AM vs GAM
//	vnbench bandwidth         Fig. 4  transfer bandwidth vs message size
//	vnbench npb               Fig. 5  NPB speedups on SP-2 / NOW / Origin 2000
//	vnbench contention-small  Fig. 6  small-message throughput under contention
//	vnbench contention-bulk   Fig. 7  8 KB bulk throughput under contention
//	vnbench linpack           §6.2    Linpack GFLOPS on 100 nodes
//	vnbench timeshare         §6.3    time-shared parallel applications
//	vnbench overcommit        §6.4.1  8:1 overcommit: remap rate, bimodal RTTs
//	vnbench ablations         §6.4.1  design-choice ablations
//	vnbench migrate           ext.    live endpoint migration: blackout, loss=0
//	vnbench faults            ext.    fault injection + automated recovery
//	vnbench simperf           ext.    event-engine self-benchmark
//	vnbench allreduce         ext.    collective algorithm sweep + SGD overlap
//	vnbench breakdown         §4      per-stage latency decomposition via tracing
//	vnbench tenants           ext.    multi-tenant metered WRR shares under overcommit
//	vnbench degrade           ext.    graceful degradation: goodput vs offered load
//	vnbench serve             ext.    serving-scale workloads: open-loop SLO curves
//	vnbench all               everything above
//
// Flags may also follow the subcommand (`vnbench serve -scenario hotkey
// -shards 4`); everything after the first positional argument is re-parsed
// into the same flag set.
//
// Use -quick for smaller client sweeps and shorter windows. The golden
// results_*.txt files capture stdout only; simperf's machine-dependent
// wall-clock section goes to stderr. -cpuprofile/-memprofile write pprof
// profiles for diagnosing simulator-performance regressions. -traceout
// exports the breakdown experiment's short-AM phase as Chrome trace-event
// JSON (load it at https://ui.perfetto.dev); -metrics prints the unified
// registry's dashboard after instrumented experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"virtnet/internal/bench"
	"virtnet/internal/coll"
	"virtnet/internal/core"
	"virtnet/internal/gam"
	"virtnet/internal/hostos"
	"virtnet/internal/logp"
	"virtnet/internal/migrate"
	"virtnet/internal/netsim"
	"virtnet/internal/nic"
	"virtnet/internal/npb"
	"virtnet/internal/sim"
)

var (
	quick      = flag.Bool("quick", false, "smaller sweeps and shorter windows")
	seed       = flag.Int64("seed", 1, "simulation seed")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceout   = flag.String("traceout", "", "write a Perfetto-compatible trace of the breakdown short-AM phase to this file")
	metrics    = flag.Bool("metrics", false, "print metrics-registry dashboards after instrumented experiments")
	shards     = flag.Int("shards", 1, "simperf/serve: engine shards (1 = classic single engine; serve defaults to 4 when unset)")
	hosts      = flag.Int("hosts", 0, "simperf/serve: cluster size override (0 = the golden sections)")
	sweep      = flag.Bool("sweep", false, "simperf: shard-scaling sweep on the 1,024-host workload (stderr, machine-dependent)")
	scenario   = flag.String("scenario", "golden", "serve: scenario to sweep ('golden' = the committed set, 'list' prints all)")
)

// experiments is the registration table: one row per subcommand, in
// "vnbench all" execution order. A new experiment plugs in here and
// inherits the shared flag/profiling plumbing — no per-command wiring.
var experiments = []struct {
	name string
	doc  string
	run  func()
}{
	{"logp", "Fig. 3  LogP parameters, AM vs GAM", runLogP},
	{"bandwidth", "Fig. 4  transfer bandwidth vs message size", runBandwidth},
	{"npb", "Fig. 5  NPB speedups on SP-2 / NOW / Origin 2000", runNPB},
	{"contention-small", "Fig. 6  small-message throughput under contention", func() { runContention(0) }},
	{"contention-bulk", "Fig. 7  8 KB bulk throughput under contention", func() { runContention(8192) }},
	{"linpack", "§6.2    Linpack GFLOPS on 100 nodes", runLinpack},
	{"timeshare", "§6.3    time-shared parallel applications", runTimeshare},
	{"overcommit", "§6.4.1  8:1 overcommit: remap rate, bimodal RTTs", runOvercommit},
	{"ablations", "§6.4.1  design-choice ablations", runAblations},
	{"sensitivity", "§6.1    LogP sensitivity: overhead vs gap", runSensitivity},
	{"migrate", "ext.    live endpoint migration: blackout, loss=0", runMigrate},
	{"faults", "ext.    fault injection + automated recovery", runFaults},
	{"simperf", "ext.    event-engine self-benchmark", runSimPerf},
	{"allreduce", "ext.    collective algorithm sweep + SGD overlap", runAllreduce},
	{"breakdown", "§4      per-stage latency decomposition via tracing", runBreakdown},
	{"tenants", "ext.    multi-tenant metered WRR shares under overcommit", runTenants},
	{"degrade", "ext.    graceful degradation: goodput vs offered load", runDegrade},
	{"serve", "ext.    serving-scale workloads: open-loop SLO curves", runServe},
	{"tailat", "ext.    tail-latency attribution over request trace trees", runTailat},
}

// flagSet reports whether the named flag was set explicitly (before or
// after the subcommand).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	flag.Parse()
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
		// The flag package stops at the first positional argument, so
		// trailing flags (`vnbench serve -scenario hotkey`) need a second
		// parse into the same flag set.
		if flag.NArg() > 1 {
			flag.CommandLine.Parse(flag.Args()[1:])
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	if cmd == "all" {
		for _, ex := range experiments {
			ex.run()
		}
		return
	}
	for _, ex := range experiments {
		if ex.name == cmd {
			ex.run()
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown command %q; available:\n", cmd)
	for _, ex := range experiments {
		fmt.Fprintf(os.Stderr, "  %-17s %s\n", ex.name, ex.doc)
	}
	os.Exit(2)
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

// amPair builds a dedicated two-node virtual network for microbenchmarks.
func amPair(s int64) (*hostos.Cluster, logp.Station, logp.Station) {
	c := hostos.NewCluster(s, 2, hostos.DefaultClusterConfig())
	b0 := core.Attach(c.Nodes[0])
	b1 := core.Attach(c.Nodes[1])
	e0, _ := b0.NewEndpoint(1, 4)
	e1, _ := b1.NewEndpoint(2, 4)
	e0.Map(0, e1.Name(), 2)
	e1.Map(0, e0.Name(), 1)
	return c, logp.AMStation{EP: e0, Idx: 0}, logp.AMStation{EP: e1, Idx: 0}
}

func gamPair(s int64) (*sim.Engine, *gam.World, logp.Station, logp.Station) {
	e := sim.NewEngine(s)
	net := netsim.New(e, netsim.DefaultConfig(), 2)
	w := gam.New(e, net, gam.DefaultConfig())
	return e, w, logp.GAMStation{N: w.Node(0), Dst: 1}, logp.GAMStation{N: w.Node(1), Dst: 0}
}

func runLogP() {
	header("Fig. 3 — LogP characterization (us)")
	iters := 200
	if *quick {
		iters = 50
	}
	c, amc, ams := amPair(*seed)
	am := logp.Measure(c.E, amc, ams, iters)
	c.Shutdown()
	e, w, gc, gs := gamPair(*seed)
	gm := logp.Measure(e, gc, gs, iters)
	w.Stop()
	e.Shutdown()

	fmt.Printf("%-6s %8s %8s %8s %8s %10s\n", "layer", "Os", "Or", "L", "g", "RTT")
	fmt.Printf("%-6s %8.2f %8.2f %8.2f %8.2f %10.2f\n", "AM",
		am.Os.Micros(), am.Or.Micros(), am.L.Micros(), am.G.Micros(), am.RTT.Micros())
	fmt.Printf("%-6s %8.2f %8.2f %8.2f %8.2f %10.2f\n", "GAM",
		gm.Os.Micros(), gm.Or.Micros(), gm.L.Micros(), gm.G.Micros(), gm.RTT.Micros())
	fmt.Printf("ratios: gap x%.2f (paper 2.21), RTT x%.2f (paper 1.23)\n",
		float64(am.G)/float64(gm.G), float64(am.RTT)/float64(gm.RTT))
}

func runBandwidth() {
	header("Fig. 4 — transfer bandwidth (MB/s) and bulk round-trip time")
	count := 200
	if *quick {
		count = 60
	}
	sizes := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	fmt.Printf("%8s %10s %10s\n", "bytes", "AM", "GAM")
	for _, sz := range sizes {
		c, amc, ams := amPair(*seed)
		amBW := logp.Bandwidth(c.E, amc, ams, sz, count)
		c.Shutdown()
		e, w, gc, gs := gamPair(*seed)
		gBW := logp.Bandwidth(e, gc, gs, sz, count)
		w.Stop()
		e.Shutdown()
		fmt.Printf("%8d %10.1f %10.1f\n", sz, amBW, gBW)
	}
	fmt.Printf("hardware limits: SBUS write DMA 46.8 MB/s (paper: AM 43.9, GAM 38 at 8 KB)\n")

	fmt.Printf("\nround-trip time for n-byte echo (paper fit: 0.1112*n + 61.02 us):\n")
	var pts [][2]float64
	for _, sz := range []int{128, 1024, 4096, 8192} {
		c, amc, ams := amPair(*seed)
		rtt := logp.RTTBulk(c.E, amc, ams, sz, 10)
		c.Shutdown()
		fmt.Printf("%8d %10.1f us\n", sz, rtt.Micros())
		pts = append(pts, [2]float64{float64(sz), rtt.Micros()})
	}
	slope, icept := fitLine(pts)
	fmt.Printf("fit: %.4f*n + %.2f us\n", slope, icept)
}

func fitLine(pts [][2]float64) (slope, intercept float64) {
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		sxy += p[0] * p[1]
	}
	slope = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept = (sy - slope*sx) / n
	return
}

func runNPB() {
	header("Fig. 5 — NPB speedups (constant problem size)")
	ps := []int{1, 2, 4, 8, 16, 32}
	if *quick {
		ps = []int{1, 2, 4, 8}
	}
	machines := []npb.Machine{npb.SP2(), npb.NewNOW(*seed), npb.Origin2000()}
	for _, m := range machines {
		fmt.Printf("\n%s:\n%-6s", m.Name(), "kernel")
		for _, p := range ps {
			fmt.Printf(" %7s", fmt.Sprintf("P=%d", p))
		}
		fmt.Println()
		for _, k := range npb.Kernels() {
			if *quick && (k.Name == "BT" || k.Name == "SP") {
				continue
			}
			s, ok := npb.Speedup(m, k, ps)
			if !ok {
				fmt.Printf("%-6s failed\n", k.Name)
				continue
			}
			fmt.Printf("%-6s", k.Name)
			for _, v := range s {
				fmt.Printf(" %7.1f", v)
			}
			fmt.Println()
		}
	}
	fmt.Println("\n(ideal = P; FT and IS are bisection-limited on the NOW, §6.2)")
}

func csWindow() (sim.Duration, sim.Duration) {
	if *quick {
		return 150 * sim.Millisecond, 300 * sim.Millisecond
	}
	return 200 * sim.Millisecond, 500 * sim.Millisecond
}

func runContention(msgBytes int) {
	what := "small messages (msgs/s)"
	if msgBytes > 0 {
		what = fmt.Sprintf("%d-byte bulk (MB/s)", msgBytes)
	}
	header(fmt.Sprintf("Fig. %s — %s under contention", map[int]string{0: "6", 8192: "7"}[msgBytes], what))
	clients := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	if *quick {
		clients = []int{1, 2, 3, 4, 8, 12}
	}
	warm, win := csWindow()
	type cfgRow struct {
		name   string
		mode   bench.ServerMode
		frames int
	}
	rows := []cfgRow{
		{"OneVN", bench.OneVN, 8},
		{"ST-8", bench.ST, 8},
		{"ST-96", bench.ST, 96},
		{"MT-8", bench.MT, 8},
		{"MT-96", bench.MT, 96},
	}
	fmt.Printf("aggregate server throughput:\n%-8s", "clients")
	for _, r := range rows {
		fmt.Printf(" %9s", r.name)
	}
	fmt.Printf("   (remaps/s on 8-frame configs)\n")
	perClient := map[string][]float64{}
	for _, n := range clients {
		fmt.Printf("%-8d", n)
		remapNote := ""
		for _, r := range rows {
			res := bench.RunClientServer(bench.CSConfig{
				Clients: n, Mode: r.mode, Frames: r.frames, MsgBytes: msgBytes,
				Warmup: warm, Window: win, Seed: *seed,
			})
			v := res.AggregateMsgs
			if msgBytes > 0 {
				v = res.AggregateMBps
			}
			fmt.Printf(" %9.0f", v)
			perClient[r.name] = append(perClient[r.name], res.PerClient[0])
			if r.frames == 8 && res.RemapsPerSec > 0 {
				remapNote += fmt.Sprintf(" %s:%.0f", r.name, res.RemapsPerSec)
			}
		}
		fmt.Printf("  %s\n", remapNote)
	}
	fmt.Printf("\nper-client (client 0) throughput:\n%-8s", "clients")
	for _, r := range rows {
		fmt.Printf(" %9s", r.name)
	}
	fmt.Println()
	for i, n := range clients {
		fmt.Printf("%-8d", n)
		for _, r := range rows {
			fmt.Printf(" %9.0f", perClient[r.name][i])
		}
		fmt.Println()
	}
}

func runLinpack() {
	header("§6.2 — Linpack on the dedicated cluster")
	cfg := bench.DefaultLinpackConfig()
	cfg.Seed = *seed
	if *quick {
		cfg.Nodes, cfg.N = 25, 2048
	}
	res, ok := bench.RunLinpack(cfg)
	if !ok {
		fmt.Println("linpack did not complete")
		return
	}
	fmt.Printf("nodes=%d n=%d nb=%d: %.2f GFLOPS in %v (%.0f%% of %0.1f GF peak)\n",
		cfg.Nodes, cfg.N, cfg.NB, res.GFlops, res.Time,
		res.Efficiency*100, float64(cfg.Nodes)*cfg.RateFlops/1e9)
	fmt.Printf("(paper: 10.14 GFLOPS on 100 nodes, Top-500 #315 in June 1997)\n")
}

func runTimeshare() {
	header("§6.3 — time-shared parallel applications")
	nodes, iters := 16, 40
	if *quick {
		nodes, iters = 8, 20
	}
	for _, imb := range []float64{0, 1.0} {
		res, ok := bench.RunTimeshare(bench.TimeshareConfig{
			Nodes: nodes, Apps: 2, Iters: iters,
			Compute: 2 * sim.Millisecond, MsgBytes: 2048,
			Imbalance: imb, Seed: *seed,
		})
		if !ok {
			fmt.Println("timeshare run failed")
			return
		}
		kind := "balanced"
		if imb > 0 {
			kind = "imbalanced"
		}
		fmt.Printf("%-11s shared=%v sequential=%v ratio=%.3f (paper: <= 1.15; gains with imbalance)\n",
			kind, res.SharedMakespan, res.SequentialTotal, res.Ratio)
		fmt.Printf("            comm/rank: shared=%v seq=%v; barrier wait: shared=%v seq=%v\n",
			res.SharedCommMean, res.SeqCommMean, res.SharedSyncMean, res.SeqSyncMean)
	}
}

func runOvercommit() {
	header("§6.4.1 — overcommitting NI resources (32 clients, 8 frames)")
	clients := 32
	if *quick {
		clients = 16
	}
	warm, win := csWindow()
	res := bench.RunClientServer(bench.CSConfig{
		Clients: clients, Mode: bench.MT, Frames: 8,
		Warmup: warm, Window: win, Seed: *seed,
	})
	peak := bench.RunClientServer(bench.CSConfig{
		Clients: 1, Mode: bench.OneVN, Frames: 8,
		Warmup: warm, Window: win, Seed: *seed,
	})
	frac := res.AggregateMsgs / peak.AggregateMsgs * 100
	fmt.Printf("overcommit %d:8 — aggregate %.0f msgs/s = %.0f%% of peak (paper: 50-75%%)\n",
		clients, res.AggregateMsgs, frac)
	fmt.Printf("endpoint re-mappings: %.0f/s (paper: 200-300/s)\n", res.RemapsPerSec)
	fmt.Printf("remap rate per window decile: %v (sustained, not a transient)\n", res.RemapTimeline)
	fast, fm, sm := res.RTT.BimodalSplit(2 * sim.Millisecond)
	fmt.Printf("client RTTs are bimodal: %.0f%% fast (mean %v), %.0f%% slow (mean %v)\n",
		fast*100, fm, (1-fast)*100, sm)
	fmt.Println(strings.TrimRight(res.RTT.Buckets(12), "\n"))
}

func runAblations() {
	header("§6.4.1 — design ablations")
	warm, win := csWindow()
	n := 24
	if *quick {
		n = 12
	}

	// A slower per-request server (40 us) lets receive queues back up, so
	// endpoints are evicted with work pending — the §6.4.1 precondition for
	// the single-threaded server writing replies into non-resident
	// endpoints.
	hw := 40 * sim.Microsecond
	base := bench.RunClientServer(bench.CSConfig{Clients: n, Mode: bench.ST, Frames: 8,
		Warmup: warm, Window: win, Seed: *seed, HandlerWork: hw})
	noRW := bench.RunClientServer(bench.CSConfig{Clients: n, Mode: bench.ST, Frames: 8,
		Warmup: warm, Window: win, Seed: *seed, HandlerWork: hw, DisableHostRW: true})
	fmt.Printf("on-host r/w state (ST, %d clients, 8 frames, 40us handler):\n", n)
	fmt.Printf("  with (paper design):    %8.0f msgs/s, %4.0f remaps/s\n", base.AggregateMsgs, base.RemapsPerSec)
	fmt.Printf("  without (orig. design): %8.0f msgs/s, %4.0f remaps/s  (paper: ST falls to a few %% of peak)\n",
		noRW.AggregateMsgs, noRW.RemapsPerSec)

	fmt.Printf("replacement policy (ST, %d clients, 8 frames):\n", n)
	for _, pol := range []hostos.ReplacementPolicy{hostos.ReplaceRandom, hostos.ReplaceLRU, hostos.ReplaceFIFO} {
		r := bench.RunClientServer(bench.CSConfig{Clients: n, Mode: bench.ST, Frames: 8,
			Warmup: warm, Window: win, Seed: *seed, Policy: pol})
		fmt.Printf("  %-7s %8.0f msgs/s, %4.0f remaps/s\n", pol, r.AggregateMsgs, r.RemapsPerSec)
	}

	fmt.Printf("logical channels per NI pair (single-client 8 KB stream):\n")
	for _, ch := range []int{1, 2, 4, 16} {
		r := bench.RunClientServer(bench.CSConfig{Clients: 1, Mode: bench.OneVN, Frames: 8,
			MsgBytes: 8192, Warmup: warm, Window: win, Seed: *seed, Channels: ch})
		fmt.Printf("  %2d channels: %6.1f MB/s  (stop-and-wait masking of ack latency)\n", ch, r.AggregateMBps)
	}

	fmt.Printf("loiter bound (bulk hog + ping endpoint sharing one NI):\n")
	on, ok1 := bench.RunLoiterAblation(false, *seed)
	off, ok2 := bench.RunLoiterAblation(true, *seed)
	if !ok1 || !ok2 {
		fmt.Println("  loiter ablation failed")
		return
	}
	fmt.Printf("  bounded (64 msgs/4 ms): hog %5.1f MB/s, %d pings, p50 %v p99 %v\n",
		on.BulkMBps, on.PingCount, on.PingP50, on.PingP99)
	fmt.Printf("  unbounded:              hog %5.1f MB/s, %d pings, p50 %v p99 %v\n",
		off.BulkMBps, off.PingCount, off.PingP50, off.PingP99)
}

// runMigrate demonstrates live endpoint migration (extension; DESIGN.md S20):
// an echo server endpoint hops around the cluster while three clients keep a
// continuous 16-byte request stream on it. Reported per move: the blackout
// (freeze at the source to install at the destination) and the transfer
// size. Reported overall: exactly-once accounting — every request must get
// exactly one reply, with zero losses, zero duplicates, and zero user-level
// return-to-sender events (redirects are transparent).
func runMigrate() {
	header("live endpoint migration — blackout under continuous 16 B request load")
	const (
		serverKey = core.Key(77)
		hReq      = 1
		hRep      = 2
	)
	nPer := 2000
	hops := []int{1, 2, 3, 0}
	if *quick {
		nPer = 600
		hops = []int{1, 0}
	}
	c := hostos.NewCluster(*seed, 4, hostos.DefaultClusterConfig())
	defer c.Shutdown()
	svc, err := migrate.NewService(c)
	if err != nil {
		fmt.Printf("migration service: %v\n", err)
		return
	}

	sb := core.Attach(c.Nodes[0])
	sb.SetResolver(svc.Dir)
	server, err := sb.NewEndpoint(serverKey, 8)
	if err != nil {
		fmt.Printf("server endpoint: %v\n", err)
		return
	}
	served := 0
	server.SetHandler(hReq, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
		served++
		if err := tok.Reply(p, hRep, args); err != nil {
			fmt.Printf("server reply: %v\n", err)
		}
	})
	cur := server
	svc.Manage(server, func(n *core.Endpoint) { cur = n })
	epID := server.Segment().EP.ID
	c.Nodes[0].Spawn("server", func(p *sim.Proc) {
		for {
			cur.Poll(p)
			p.Sleep(10 * sim.Microsecond)
		}
	})

	// Three clients on nodes 1-3 stream 16-byte requests (two uint64 words)
	// through the whole sequence of moves.
	type clientStat struct {
		ep      *core.Endpoint
		replies map[uint64]int
		returns int
		done    bool
		lastAt  sim.Time
		maxGap  sim.Duration
	}
	clients := make([]*clientStat, 3)
	for i := range clients {
		node := i + 1
		b := core.Attach(c.Nodes[node])
		b.SetResolver(svc.Dir)
		ep, err := b.NewEndpoint(core.Key(1000+node), 8)
		if err != nil {
			fmt.Printf("client endpoint: %v\n", err)
			return
		}
		cs := &clientStat{ep: ep, replies: make(map[uint64]int)}
		clients[i] = cs
		ep.SetHandler(hRep, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
			if cs.lastAt != 0 {
				if gap := p.Now().Sub(cs.lastAt); gap > cs.maxGap {
					cs.maxGap = gap
				}
			}
			cs.lastAt = p.Now()
			cs.replies[args[0]]++
		})
		ep.SetReturnHandler(func(p *sim.Proc, _ nic.NackReason, _, _ int, _ [4]uint64, _ []byte) {
			cs.returns++
		})
		if err := ep.Map(0, server.Name(), serverKey); err != nil {
			fmt.Printf("client map: %v\n", err)
			return
		}
		c.Nodes[node].Spawn("client", func(p *sim.Proc) {
			for id := 1; id <= nPer; id++ {
				if err := cs.ep.Request(p, 0, hReq, [4]uint64{uint64(id), uint64(node)}); err != nil {
					fmt.Printf("client %d request: %v\n", node, err)
					return
				}
				p.Sleep(40 * sim.Microsecond)
			}
			for len(cs.replies) < nPer {
				cs.ep.Poll(p)
				p.Sleep(10 * sim.Microsecond)
			}
			cs.done = true
		})
	}

	// The mover walks the endpoint around the cluster mid-stream.
	type moveRec struct {
		from, to netsim.NodeID
		stats    *migrate.MoveStats
	}
	var moves []moveRec
	c.Nodes[0].Spawn("mover", func(p *sim.Proc) {
		for _, dst := range hops {
			p.Sleep(10 * sim.Millisecond)
			h, _ := svc.Endpoint(epID)
			from := h.Bundle().Node.ID
			if from == netsim.NodeID(dst) {
				continue
			}
			s, err := svc.Move(p, h, netsim.NodeID(dst))
			if err != nil {
				fmt.Printf("move %d->%d: %v\n", from, dst, err)
				return
			}
			moves = append(moves, moveRec{from: from, to: netsim.NodeID(dst), stats: s})
		}
	})

	deadline := sim.Time(0).Add(60 * sim.Second)
	for c.E.Now() < deadline {
		c.E.RunFor(50 * sim.Millisecond)
		alldone := true
		for _, cs := range clients {
			alldone = alldone && cs.done
		}
		if alldone && len(moves) >= len(hops) {
			break
		}
	}

	fmt.Printf("%d moves under load (3 clients x %d requests):\n", len(moves), nPer)
	fmt.Printf("%-6s %-8s %12s %10s %8s\n", "move", "route", "blackout", "bytes", "chunks")
	for i, m := range moves {
		fmt.Printf("%-6d %d -> %-4d %12v %10d %8d\n",
			i+1, m.from, m.to, m.stats.Blackout, m.stats.Bytes, m.stats.Chunks)
	}

	sent := 3 * nPer
	replied, lost, dup, returns := 0, 0, 0, 0
	var redirects, refreshes int64
	var maxGap sim.Duration
	for _, cs := range clients {
		if !cs.done {
			fmt.Println("FAIL: a client did not complete (lost messages or deadlock)")
		}
		for id := 1; id <= nPer; id++ {
			n := cs.replies[uint64(id)]
			if n >= 1 {
				replied++
			}
			if n == 0 {
				lost++
			}
			if n > 1 {
				dup += n - 1
			}
		}
		returns += cs.returns
		redirects += cs.ep.Stats.Redirects
		refreshes += cs.ep.Stats.Refreshes
		if cs.maxGap > maxGap {
			maxGap = cs.maxGap
		}
	}
	fmt.Printf("exactly-once: %d sent, %d replied, %d served — lost %d, duplicates %d (both must be 0)\n",
		sent, replied, served, lost, dup)
	fmt.Printf("redirects absorbed by the library: %d (%d translation refreshes); user-level returns: %d\n",
		redirects, refreshes, returns)
	fmt.Printf("directory: %d publishes, %d resolves; name version now %d\n",
		svc.Dir.C.Get("dir.publish"), svc.Dir.C.Get("dir.resolve"), svc.Dir.Version(epID))
	fmt.Printf("worst client-observed service gap: %v (covers blackout + redirect retries)\n", maxGap)
}

// bigSimPerf is the 1,024-host scaling workload: 512 pairs on the
// three-level fat tree, ~25% of the streams crossing leaves (and shards).
func bigSimPerf(nshards int) bench.SimPerfConfig {
	cfg := bench.SimPerfConfig{Hosts: 1024, Pairs: 512, Msgs: 60, Seed: *seed, Shards: nshards}
	if *quick {
		cfg.Msgs = 15
	}
	return cfg
}

// printSimPerf prints one simperf section: deterministic virtual-time
// metrics to stdout (golden), wall-clock rates to stderr.
func printSimPerf(cfg bench.SimPerfConfig, res bench.SimPerfResult) {
	msgs := float64(res.Replied)
	nodes := 2 * cfg.Pairs
	if cfg.Hosts > 0 {
		nodes = cfg.Hosts
	}
	fmt.Printf("pairs=%d nodes=%d msgs/client=%d\n", cfg.Pairs, nodes, cfg.Msgs)
	fmt.Printf("virtual: replied=%d time=%v rate=%.0f msgs/s\n",
		res.Replied, res.Virtual, res.MsgsPerSec)
	s := res.Engine
	hitRate := 0.0
	if s.PoolHits+s.PoolMisses > 0 {
		hitRate = float64(s.PoolHits) / float64(s.PoolHits+s.PoolMisses)
	}
	fmt.Printf("events: fired=%d (%.1f/msg), max pending=%d, pool hit rate=%.3f\n",
		s.Fired, float64(s.Fired)/msgs, s.MaxPending, hitRate)
	ev := float64(res.EventsRun)
	fmt.Fprintf(os.Stderr,
		"wall-clock (machine-dependent, not golden): %.3fs, %.2fM events/s, %.0f ns/event, %.1f allocs/msg\n",
		res.Wall.Seconds(), ev/res.Wall.Seconds()/1e6,
		float64(res.Wall.Nanoseconds())/ev, float64(res.Mallocs)/msgs)
}

// runSimPerf is the event-engine self-benchmark (tentpole of the engine
// overhaul): client/server pairs stream small requests to completion.
// With default flags it prints the two golden sections — the original
// 16-node stream and the 1,024-host single-shard baseline — both captured
// in results_simperf.txt. -hosts/-shards run one custom section instead;
// -sweep appends a shard-scaling sweep (1/2/4/8 shards on the 1,024-host
// workload) whose wall-clock speedups go to stderr only.
func runSimPerf() {
	if *hosts != 0 || *shards != 1 {
		cfg := bench.SimPerfConfig{Pairs: 8, Msgs: 10000, Seed: *seed, Shards: *shards, Hosts: *hosts}
		if *hosts != 0 {
			cfg = bigSimPerf(*shards)
			cfg.Hosts = *hosts
			cfg.Pairs = *hosts / 2
		}
		if *quick {
			cfg.Msgs /= 4
		}
		header(fmt.Sprintf("simperf — event-engine self-benchmark (%d hosts, %d shards)",
			max(cfg.Hosts, 2*cfg.Pairs), *shards))
		printSimPerf(cfg, bench.RunSimPerf(cfg))
	} else {
		header("simperf — event-engine self-benchmark (16-node stream)")
		cfg := bench.SimPerfConfig{Pairs: 8, Msgs: 10000, Seed: *seed}
		if *quick {
			cfg.Msgs = 2000
		}
		printSimPerf(cfg, bench.RunSimPerf(cfg))

		header("simperf — 1,024-host cluster baseline (1 shard)")
		big := bigSimPerf(1)
		printSimPerf(big, bench.RunSimPerf(big))
	}
	if *sweep {
		fmt.Fprintf(os.Stderr, "shard-scaling sweep (1,024 hosts; wall-clock, machine-dependent):\n")
		base := 0.0
		for _, n := range []int{1, 2, 4, 8} {
			res := bench.RunSimPerf(bigSimPerf(n))
			evs := float64(res.EventsRun) / res.Wall.Seconds()
			if n == 1 {
				base = evs
			}
			fmt.Fprintf(os.Stderr, "  shards=%d  events/s=%.2fM  speedup=%.2fx  replied=%d\n",
				n, evs/1e6, evs/base, res.Replied)
		}
	}
}

// runAllreduce sweeps the collective engine's algorithms over vector sizes
// on the full 100-node cluster (Fig.-style table of virtual completion
// times), then runs the data-parallel SGD loop that shows bucketed gradient
// allreduce hiding behind gradient computation. Large vectors must show the
// bandwidth-optimal schedules (ring, hierarchical) beating the binomial
// reduce+bcast baseline; small vectors show the opposite, which is exactly
// what the size-based selector exploits.
func runAllreduce() {
	nodes := 100
	sizes := []int{1 << 10, 32 << 10, 1 << 20, 16 << 20}
	if *quick {
		nodes = 25
		sizes = []int{1 << 10, 32 << 10, 1 << 20}
	}
	algs := []coll.Algorithm{coll.Binomial, coll.Ring, coll.RingFlat, coll.Rabenseifner, coll.Hierarchical}
	header(fmt.Sprintf("allreduce — collective algorithm sweep (%d nodes)", nodes))
	fmt.Printf("virtual completion time (ms) by per-rank vector size:\n")
	fmt.Printf("%10s", "bytes")
	for _, a := range algs {
		fmt.Printf(" %12s", a)
	}
	fmt.Printf(" %12s %8s\n", "auto", "best")
	verified := true
	for _, szBytes := range sizes {
		fmt.Printf("%10d", szBytes)
		best, bestAlg := 0.0, coll.Auto
		for _, a := range algs {
			cell := bench.RunAllreduceCell(nodes, szBytes, a, *seed)
			verified = verified && cell.OK
			ms := cell.Time.Micros() / 1000
			fmt.Printf(" %12.3f", ms)
			if bestAlg == coll.Auto || ms < best {
				best, bestAlg = ms, a
			}
		}
		auto := bench.RunAllreduceCell(nodes, szBytes, coll.Auto, *seed)
		verified = verified && auto.OK
		fmt.Printf(" %12.3f %8s\n", auto.Time.Micros()/1000, bestAlg)
	}
	fmt.Printf("results verified elementwise on every rank: %v\n", verified)
	fmt.Printf("selector: n<=2 or <=4 KB binomial, <=256 KB rabenseifner, above ring (leaf-ordered)\n")

	header("SGD — data-parallel training, gradient allreduce overlap")
	cfg := bench.SGDConfig{Nodes: 16, Params: 1 << 18, Buckets: 8, Iters: 3,
		Compute: 12 * sim.Millisecond, Seed: *seed}
	if *quick {
		cfg.Nodes, cfg.Params, cfg.Iters = 8, 1<<16, 2
		cfg.Compute = 2 * sim.Millisecond
	}
	res := bench.RunSGD(cfg)
	if !res.OK {
		fmt.Println("sgd run failed")
		return
	}
	fmt.Printf("ranks=%d params=%d buckets=%d iters=%d compute=%v/bucket (ring allreduce per bucket)\n",
		cfg.Nodes, cfg.Params, cfg.Buckets, cfg.Iters, cfg.Compute)
	fmt.Printf("sequential (compute, then reduce):     makespan %v (rank0 comm %v)\n",
		res.Sequential, res.CommSeq)
	fmt.Printf("overlapped (reduce behind next bucket): makespan %v (rank0 comm %v)\n",
		res.Overlapped, res.CommOvl)
	saved := float64(res.Sequential-res.Overlapped) / float64(res.Sequential) * 100
	fmt.Printf("overlap shortens the step by %.1f%%\n", saved)
}

// runSensitivity reproduces the §6.1 claim (citing the LogP sensitivity
// study) that added per-message *overhead* hurts applications more than an
// equal increase in *gap*, because gap only limits long bursts of small
// messages.
func runSensitivity() {
	header("§6.1 — LogP sensitivity: overhead vs gap (P=8)")
	// Two regimes, per the paper's sentence: "increases in gap are, in
	// general, less detrimental than increases in overheads, because such
	// increases only effect applications which send long, frequent bursts
	// of small messages."
	spaced := npb.Kernel{Name: "TYPICAL", Iters: 400, Flops: 0.15e6,
		Pattern: npb.PatPipeline, Bytes: 32e3, SmallMsgs: 1}
	burst := npb.Kernel{Name: "BURST", Iters: 50, Flops: 0.4e6,
		Pattern: npb.PatPipeline, Bytes: 60e3, SmallMsgs: 20}
	baseS := runKernelWith(spaced, nil)
	baseB := runKernelWith(burst, nil)
	overheadMod := func(d sim.Duration) func(*hostos.ClusterConfig) {
		return func(c *hostos.ClusterConfig) {
			c.NIC.OsShort += d
			c.NIC.OrShort += d
			c.NIC.OsBulk += d
			c.NIC.OrBulk += d
		}
	}
	gapMod := func(d sim.Duration) func(*hostos.ClusterConfig) {
		return func(c *hostos.ClusterConfig) {
			c.NIC.SendPost += d
			c.NIC.AckSend += d
		}
	}
	fmt.Printf("%8s | %12s %12s | %12s %12s\n", "delta",
		"typical o+d", "typical g+d", "burst o+d", "burst g+d")
	for _, d := range []sim.Duration{2 * sim.Microsecond, 4 * sim.Microsecond, 8 * sim.Microsecond} {
		so := runKernelWith(spaced, overheadMod(d))
		sg := runKernelWith(spaced, gapMod(d))
		bo := runKernelWith(burst, overheadMod(d))
		bg := runKernelWith(burst, gapMod(d))
		fmt.Printf("%8v | %11.2fx %11.2fx | %11.2fx %11.2fx\n", d,
			float64(so)/float64(baseS), float64(sg)/float64(baseS),
			float64(bo)/float64(baseB), float64(bg)/float64(baseB))
	}
	fmt.Println("(slowdown vs unmodified; overhead hurts everywhere, gap only hurts bursts)")
}

func runKernelWith(k npb.Kernel, mod func(*hostos.ClusterConfig)) sim.Duration {
	m := npb.NewNOW(*seed)
	m.CfgMod = mod
	t, ok := m.Time(k, 8)
	if !ok {
		return 0
	}
	return t
}
