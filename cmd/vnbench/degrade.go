package main

import (
	"fmt"
	"sort"

	"virtnet/internal/fault"
	"virtnet/internal/hostos"
	"virtnet/internal/reliab"
	"virtnet/internal/rpc"
	"virtnet/internal/sim"
)

// runDegrade is the graceful-degradation experiment (DESIGN.md §10): an
// open-loop Poisson request stream sweeps offered load from well under to
// 3x the service capacity of a two-server pool, with a 5 ms end-to-end
// deadline on every request. With the reliability layer on (bounded
// admission queues, deadline shedding at every tier, budgeted backoff
// retries, circuit breakers), goodput — replies that are correct AND within
// deadline — plateaus near capacity as offered load keeps climbing, with
// bounded p99. The ablation (unbounded FIFO, no shedding, blind immediate
// retries on timeout) serves ever-staler work past saturation: goodput
// collapses even though the servers stay 100% busy. A third variant re-runs
// the reliability layer under fault churn (loss bursts, a client cut off,
// a firmware reboot) to show the plateau survives an unreliable fabric.
func runDegrade() {
	header("graceful degradation under overload — goodput vs offered load")
	const (
		nodes     = 8
		nServers  = 2
		key       = 91
		service   = 200 * sim.Microsecond
		deadline  = 5 * sim.Millisecond
		queue     = 16 // bounded admission: 16 x 200us = 3.2ms < deadline
		maxOut    = 32 // per-client outstanding cap
		blindMax  = 3  // ablation: total attempts per request
		churnPlan = "burst:all@120ms+80ms:0.05,hostlink:6@220ms+30ms,reboot:node7@300ms"
	)
	nClients := nodes - nServers
	capacity := float64(nServers) * float64(sim.Second) / float64(service) // rps
	measure := 400 * sim.Millisecond
	factors := []float64{0.25, 0.5, 1.0, 1.5, 2.0, 3.0}
	if *quick {
		measure = 150 * sim.Millisecond
		factors = []float64{0.5, 1.0, 2.0}
	}
	fmt.Printf("capacity ~ %.0f rps (%d servers x %v service), deadline %v, %d open-loop clients\n",
		capacity, nServers, sim.Time(0).Add(service).Sub(0), sim.Time(0).Add(deadline).Sub(0), nClients)

	type row struct {
		factor                        float64
		offered, good, failed, capped int
		shed, overload                int64
		p99                           sim.Duration
	}

	run := func(factor float64, reliabOn bool, churn string) row {
		c := hostos.NewCluster(*seed, nodes, hostos.DefaultClusterConfig())
		defer c.Shutdown()
		m := reliab.NewMetrics()
		stop := false

		var servers []*rpc.Server
		for si := 0; si < nServers; si++ {
			opts := rpc.Options{Queue: queue, Metrics: m}
			if !reliabOn {
				// Ablation: effectively unbounded FIFO, deadlines ignored.
				opts = rpc.Options{Queue: 1 << 20, NoShed: true, NoBreaker: true, Metrics: m}
			}
			s, err := rpc.NewServerOpts(c.Nodes[si], key, opts)
			if err != nil {
				fmt.Printf("server: %v\n", err)
				return row{}
			}
			node := c.Nodes[si]
			s.Register(1, func(p *sim.Proc, args []byte) ([]byte, error) {
				node.Compute(p, service)
				return args, nil
			})
			srv := s
			node.Spawn("degrade-server", func(p *sim.Proc) {
				for !stop {
					worked := srv.Poll(p) > 0
					if srv.Step(p) {
						worked = true
					}
					if !worked {
						p.Sleep(5 * sim.Microsecond)
					}
				}
			})
			servers = append(servers, s)
		}

		if churn != "" {
			pl, err := fault.Parse(churn)
			if err != nil {
				fmt.Printf("churn plan: %v\n", err)
				return row{}
			}
			pl.Apply(c)
		}

		end := sim.Time(0).Add(measure)
		perClient := capacity * factor / float64(nClients)
		meanGap := float64(sim.Second) / perClient
		var offered, good, failed, capped int
		var lats []sim.Duration

		type callRec struct {
			pc       *rpc.Pending
			issued   sim.Time
			deadline sim.Time // original end-to-end deadline, kept across retries
			attempts int
			payload  []byte
		}

		for ci := 0; ci < nClients; ci++ {
			node := c.Nodes[nServers+ci]
			target := servers[ci%nServers]
			node.Spawn("degrade-client", func(p *sim.Proc) {
				opts := rpc.Options{Metrics: m}
				if !reliabOn {
					opts.NoBreaker = true
				}
				cl, err := rpc.NewClientOpts(node, target.Name(), key, opts)
				if err != nil {
					fmt.Printf("client: %v\n", err)
					return
				}
				rng := c.E.Rand()
				var inflight []*callRec
				next := sim.Time(0).Add(sim.Duration(rng.ExpFloat64() * meanGap))
				issue := func(rec *callRec, dl sim.Time) {
					rec.attempts++
					pc, err := cl.GoCtx(p, 1, rec.payload, reliab.Ctx{Deadline: dl})
					if err != nil {
						failed++
						return
					}
					rec.pc = pc
					inflight = append(inflight, rec)
				}
				for {
					now := p.Now()
					// Open-loop arrivals: the world does not slow down when
					// the system does.
					for next <= now && now < end {
						offered++
						if len(inflight) < maxOut {
							rec := &callRec{issued: now, deadline: now.Add(deadline),
								payload: []byte{byte(offered)}}
							issue(rec, rec.deadline)
						} else {
							capped++
						}
						next = next.Add(sim.Duration(rng.ExpFloat64() * meanGap))
					}
					// Harvest.
					kept := inflight[:0]
					for _, rec := range inflight {
						_, done, err := rec.pc.TryWait(p)
						switch {
						case done && err == nil:
							if now <= rec.deadline {
								good++
								lats = append(lats, now.Sub(rec.issued))
							} else {
								failed++
							}
						case done:
							failed++
						case now > rec.deadline && reliabOn:
							// Deadline-aware: expired work is abandoned, not
							// re-offered.
							rec.pc.Abandon()
							failed++
						case now > rec.deadline.Add(deadline*sim.Duration(rec.attempts-1)) && !reliabOn:
							// Ablation: blind retry with a fresh transport
							// deadline (the user's deadline is long gone).
							rec.pc.Abandon()
							if rec.attempts < blindMax {
								issue(rec, now.Add(deadline))
							} else {
								failed++
							}
						default:
							kept = append(kept, rec)
						}
					}
					inflight = kept
					if now >= end && len(inflight) == 0 {
						return
					}
					if now >= end.Add(20*sim.Millisecond) {
						for _, rec := range inflight {
							rec.pc.Abandon()
							failed++
						}
						return
					}
					if cl.Poll(p) == 0 {
						p.Sleep(10 * sim.Microsecond)
					}
				}
			})
		}

		c.E.RunFor(measure + 50*sim.Millisecond)
		stop = true
		c.E.RunFor(sim.Millisecond)
		r := row{factor: factor, offered: offered, good: good, failed: failed, capped: capped,
			shed: m.Get("shed"), overload: m.Get("overload_nacks")}
		if len(lats) > 0 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			r.p99 = lats[len(lats)*99/100]
		}
		return r
	}

	secs := float64(measure) / float64(sim.Second)
	variants := []struct {
		title   string
		reliabs bool
		churn   string
	}{
		{"reliability layer on", true, ""},
		{"reliability layer off (ablation)", false, ""},
		{"reliability layer on + fault churn", true, churnPlan},
	}
	peak := map[int]float64{}
	at2x := map[int]float64{}
	for vi, v := range variants {
		fmt.Printf("\n-- %s --\n", v.title)
		fmt.Printf("%-9s %12s %12s %10s %9s %8s %9s %8s\n",
			"load", "offered/s", "goodput/s", "goodfrac", "p99_ms", "shed", "overload", "capped")
		for _, f := range factors {
			r := run(f, v.reliabs, v.churn)
			goodput := float64(r.good) / secs
			frac := 0.0
			if r.offered > 0 {
				frac = float64(r.good) / float64(r.offered)
			}
			fmt.Printf("%-9s %12.0f %12.0f %10.3f %9.2f %8d %9d %8d\n",
				fmt.Sprintf("%.2fx", f), float64(r.offered)/secs, goodput, frac,
				float64(r.p99)/float64(sim.Millisecond), r.shed, r.overload, r.capped)
			if goodput > peak[vi] {
				peak[vi] = goodput
			}
			if f == 2.0 {
				at2x[vi] = goodput
			}
		}
	}
	if !*quick {
		fmt.Println()
		for vi, v := range variants {
			pct := 0.0
			if peak[vi] > 0 {
				pct = 100 * at2x[vi] / peak[vi]
			}
			fmt.Printf("goodput at 2.0x offered: %3.0f%% of peak — %s\n", pct, v.title)
		}
	}
}
