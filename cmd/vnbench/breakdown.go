package main

import (
	"fmt"
	"os"

	"virtnet/internal/core"
	"virtnet/internal/hostos"
	"virtnet/internal/obs"
	"virtnet/internal/sim"
)

// runBreakdown reproduces the paper's §4 accounting of where the microseconds
// go, using the cross-layer flight recorder instead of hand-placed timers:
// every message is sampled, each layer marks its stage boundary, and the
// per-stage means decompose the end-to-end one-way latency exactly (stage
// intervals are contiguous by construction, so the stage sum carries no
// residual). An independent app-side measurement — the client timestamps the
// post, the server handler timestamps its first instruction — cross-checks
// the recorder's end-to-end number. The final table shows how the wrr-wait
// stage inflates as one NI's weighted round-robin serves more and more
// backlogged sender endpoints (§5/§6 endpoint overcommit).
func runBreakdown() {
	header("§4 — per-stage latency decomposition (cross-layer tracing)")
	iters := 300
	if *quick {
		iters = 60
	}

	fmt.Printf("short AM request, %d serial ping-pongs node0 -> node1:\n", iters)
	dec, appUs, o := breakdownPingPong(iters, 0)
	fmt.Print(dec[obs.KindShort].Render())
	fmt.Printf("  app-side one-way mean %.3f us (independent timestamps)\n", appUs)
	fmt.Printf("reply leg (node1 -> node0):\n")
	fmt.Print(dec[obs.KindReply].Render())
	emitObsArtifacts(o)

	fmt.Printf("\n8 KB bulk request, %d serial ping-pongs node0 -> node1:\n", iters)
	dec, appUs, o = breakdownPingPong(iters, 8192)
	fmt.Print(dec[obs.KindBulk].Render())
	fmt.Printf("  app-side one-way mean %.3f us (independent timestamps)\n", appUs)
	if *metrics {
		fmt.Print(o.R.Dashboard())
	}

	perEP := 96
	if *quick {
		perEP = 24
	}
	frames := hostos.DefaultClusterConfig().NIC.Frames
	fmt.Printf("\nwrr-wait inflation under endpoint overcommit (%d NI frames, %d msgs per endpoint):\n",
		frames, perEP)
	fmt.Printf("%6s %8s %14s %12s %10s\n", "K", "msgs", "wrr-wait(us)", "e2e(us)", "x vs K=1")
	var base float64
	for _, k := range []int{1, 2, 4, 8, 16} {
		d := breakdownWRR(k, perEP)
		wrrUs := float64(d.Stage[obs.StageWRRWait]) / 1e3 / float64(d.N)
		e2eUs := float64(d.Total) / 1e3 / float64(d.N)
		if k == 1 {
			base = wrrUs
		}
		fmt.Printf("%6d %8d %14.3f %12.3f %9.1fx\n", k, d.N, wrrUs, e2eUs, wrrUs/base)
	}
}

// breakdownPingPong runs iters serial request/reply exchanges between a
// client on node 0 and a server on node 1, tracing every message, and
// returns the per-kind decomposition plus the app-side one-way mean (µs).
// The client's timestamp immediately before Request coincides with the
// flight's opening mark (the library preamble is free when credits are
// available), and the flight ends exactly when the handler body starts, so
// the two measurement paths must agree to the nanosecond.
func breakdownPingPong(iters, payload int) ([obs.NumKinds]obs.Decomp, float64, *obs.Obs) {
	cl := hostos.NewCluster(*seed, 2, hostos.DefaultClusterConfig())
	defer cl.Shutdown()
	o := cl.EnableObs(obs.Options{SampleEvery: 1, SnapshotEvery: 5 * sim.Millisecond})
	b0 := core.Attach(cl.Nodes[0])
	b1 := core.Attach(cl.Nodes[1])
	client, _ := b0.NewEndpoint(1, 4)
	server, _ := b1.NewEndpoint(2, 4)
	client.Map(0, server.Name(), 2)
	server.Map(0, client.Name(), 1)

	var oneWay sim.Duration
	server.SetHandler(1, func(p *sim.Proc, tok *core.Token, a [4]uint64, _ []byte) {
		oneWay += p.Now().Sub(sim.Time(a[0]))
		tok.Reply(p, 2, a)
	})
	done := 0
	client.SetHandler(2, func(p *sim.Proc, tok *core.Token, a [4]uint64, _ []byte) {
		done++
	})

	stop := false
	cl.Nodes[1].Spawn("server", func(p *sim.Proc) {
		for !stop {
			if server.Poll(p) == 0 {
				p.Sleep(2 * sim.Microsecond)
			}
		}
	})
	var data []byte
	if payload > 0 {
		data = make([]byte, payload)
	}
	cl.Nodes[0].Spawn("client", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			t0 := p.Now()
			var err error
			if payload > 0 {
				err = client.RequestBulk(p, 0, 1, data, [4]uint64{uint64(t0)})
			} else {
				err = client.Request(p, 0, 1, [4]uint64{uint64(t0)})
			}
			if err != nil {
				return
			}
			for done <= i {
				if client.Poll(p) == 0 {
					p.Sleep(2 * sim.Microsecond)
				}
			}
		}
		stop = true
	})
	// Chunked run: stop soon after the workload completes so the snapshot
	// ticker doesn't pad the registry timeline (and the trace export) with a
	// long idle tail.
	for i := 0; i < 200 && !stop; i++ {
		cl.E.RunFor(10 * sim.Millisecond)
	}
	o.T.SweepOpen("end-of-run", cl.E.Now())
	return obs.Decompose(o.T.Flights()), float64(oneWay) / 1e3 / float64(iters), o
}

// breakdownWRR runs K sender endpoints on one node, each streaming perEP
// short requests to its own sink endpoint on a second node, and returns the
// short-request decomposition. With K backlogged endpoints the NI's weighted
// round-robin hands each endpoint 1/K of the send slots, so the wrr-wait
// stage should scale roughly linearly in K while the other stages stay put.
func breakdownWRR(k, perEP int) obs.Decomp {
	cl := hostos.NewCluster(*seed, 2, hostos.DefaultClusterConfig())
	defer cl.Shutdown()
	o := cl.EnableObs(obs.Options{SampleEvery: 1})
	b0 := core.Attach(cl.Nodes[0])
	b1 := core.Attach(cl.Nodes[1])

	got := make([]int, k)
	senders := make([]*core.Endpoint, k)
	for i := 0; i < k; i++ {
		snd, _ := b0.NewEndpoint(core.Key(1+i), 4)
		sink, _ := b1.NewEndpoint(core.Key(100+i), 4)
		snd.Map(0, sink.Name(), core.Key(100+i))
		sink.Map(0, snd.Name(), core.Key(1+i))
		sink.SetHandler(1, func(p *sim.Proc, tok *core.Token, a [4]uint64, _ []byte) {
			tok.Reply(p, 2, a)
		})
		i := i
		snd.SetHandler(2, func(p *sim.Proc, tok *core.Token, a [4]uint64, _ []byte) {
			got[i]++
		})
		senders[i] = snd
	}

	stop := false
	cl.Nodes[1].Spawn("sink-poll", func(p *sim.Proc) {
		for !stop {
			if b1.Poll(p) == 0 {
				p.Sleep(2 * sim.Microsecond)
			}
		}
	})
	for i := 0; i < k; i++ {
		i := i
		snd := senders[i]
		cl.Nodes[0].Spawn("sender", func(p *sim.Proc) {
			for j := 0; j < perEP; j++ {
				if snd.Request(p, 0, 1, [4]uint64{}) != nil {
					return
				}
				snd.Poll(p)
			}
			for got[i] < perEP {
				if snd.Poll(p) == 0 {
					p.Sleep(2 * sim.Microsecond)
				}
			}
			if allDone(got, perEP) {
				stop = true
			}
		})
	}
	for i := 0; i < 200 && !stop; i++ {
		cl.E.RunFor(10 * sim.Millisecond)
	}
	o.T.SweepOpen("end-of-run", cl.E.Now())
	return obs.Decompose(o.T.Flights())[obs.KindShort]
}

func allDone(got []int, want int) bool {
	for _, g := range got {
		if g < want {
			return false
		}
	}
	return true
}

// emitObsArtifacts handles the -traceout and -metrics flags against the
// short-AM phase's observability layer: the Chrome trace-event JSON export
// (load it at https://ui.perfetto.dev) and the registry dashboard.
func emitObsArtifacts(o *obs.Obs) {
	if *traceout != "" {
		f, err := os.Create(*traceout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceout: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, o.T, o.R); err != nil {
			fmt.Fprintf(os.Stderr, "traceout: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *metrics {
		fmt.Print(o.R.Dashboard())
	}
}
