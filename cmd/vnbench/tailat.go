package main

import (
	"fmt"
	"os"

	"virtnet/internal/bench"
	"virtnet/internal/obs"
	"virtnet/internal/sim"
)

// runTailat is the tail-latency attribution experiment: the four golden
// serving scenarios run once each near saturation with the flight recorder
// sampling request trace trees (1-in-8 measured arrivals), and the
// critical-path analyzer folds every finished tree into a per-SLO-class
// dominant-stage distribution plus exemplar worst traces. The point is
// that *where* the tail comes from differs by scenario even when the p99
// looks similar: incast tails attribute to fan-in convergence, fault churn
// to retry backoff, hot keys to server queueing on the saturated shard.
// Everything is virtual-time deterministic per (seed, shards); the golden
// output is results_tailat.txt. -traceout additionally exports the last
// scenario's merged timeline (per-shard tracks, traceID-linked flow
// arrows) as Perfetto-compatible JSON.
func runTailat() {
	sh := *shards
	if !flagSet("shards") {
		sh = 4 // attribution is only interesting when the merge is real
	}
	nHosts, nServers, nClients := 256, 32, 64
	warm, win := 50*sim.Millisecond, 150*sim.Millisecond
	if *quick {
		nHosts, nServers, nClients = 64, 8, 16
		warm, win = 20*sim.Millisecond, 60*sim.Millisecond
	}
	if *hosts != 0 {
		nHosts = *hosts
		nServers = nHosts / 8
		nClients = nHosts / 4
	}
	const factor = 1.0 // at the knee: tails form but each scenario keeps its own mechanism
	const sample = 8   // 1-in-8 measured arrivals become trace trees

	header(fmt.Sprintf("tailat — tail-latency attribution over request trace trees (%d hosts, %d shards, %d servers, %d clients)",
		nHosts, sh, nServers, nClients))
	fmt.Printf("offered load %.1fx capacity; deadline 20ms; 1-in-%d measured arrivals traced; %v window after %v warmup\n",
		factor, sample, win, warm)

	scenarios := []string{"baseline", "hotkey", "incast", "faultchurn"}
	for _, scn := range scenarios {
		var desc string
		for _, s := range bench.ServeScenarios() {
			if s.Name == scn {
				desc = s.Desc
			}
		}
		res, err := bench.RunServePoint(bench.ServeConfig{
			Scenario: scn, Factor: factor,
			Hosts: nHosts, Servers: nServers, Clients: nClients,
			Shards: sh, Seed: *seed, Warmup: warm, Window: win,
			TraceSample: sample,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tailat: %v\n", err)
			os.Exit(2)
		}
		slo := res.SLO
		secs := win.Seconds()
		fmt.Printf("\n-- %s: %s --\n", scn, desc)
		fmt.Printf("  offered %.0f/s  good %.1f%%  p50 %.2fms  p99 %.2fms  flights %d\n",
			float64(slo.Offered)/secs, 100*slo.GoodputFrac(),
			float64(slo.Lat.Quantile(0.5))/float64(sim.Millisecond),
			float64(slo.Lat.Quantile(0.99))/float64(sim.Millisecond),
			len(res.Flights))
		fmt.Print(res.Attr.Render())

		if *traceout != "" && scn == scenarios[len(scenarios)-1] {
			f, err := os.Create(*traceout)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tailat: %v\n", err)
				os.Exit(2)
			}
			if err := obs.WriteChromeTraceMerged(f, res.Tracers, res.ShardOf, nil); err != nil {
				fmt.Fprintf(os.Stderr, "tailat: %v\n", err)
				os.Exit(2)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "tailat: wrote merged Perfetto trace (%s scenario) to %s\n", scn, *traceout)
		}
	}
}
