package main

import (
	"fmt"

	"virtnet/internal/ctlplane"
	"virtnet/internal/hostos"
	"virtnet/internal/obs"
	"virtnet/internal/sim"
	"virtnet/internal/vnet"
)

// runTenants retells the paper's §5 overcommit story as multi-tenant
// interference under metered WRR shares: three tenants (shares 4:2:1) place
// more client endpoints on one node than its NI has frames, stream echo
// traffic to per-tenant server nodes, and the NI's weighted loiter budget
// divides send service in share proportion while the segment driver churns
// endpoints through the frames. Everything is driven through the ctlplane
// API — the same surface cmd/vnproxyd serves — across two full
// create→traffic→fault→delete cycles, so the run doubles as a tenant-churn
// soak of the control plane.
func runTenants() {
	header("multi-tenant control plane — §5 overcommit as metered WRR shares (3 tenants on one NI)")

	cc := hostos.DefaultClusterConfig()
	// Meter aggressively: with the stock parameters the flows are
	// credit-limited (32-entry windows drain before the 64-msg loiter
	// budget binds) and the WRR degenerates to round-robin. Deep credit
	// windows keep every client endpoint backlogged so the NI send
	// processor is the contended resource, and a small per-weight budget
	// (8×share msgs) divides it in share proportion.
	cc.NIC.RecvQDepth = 256
	cc.NIC.LoiterMsgs = 8
	cc.NIC.LoiterTime = 250 * sim.Microsecond
	c := hostos.NewCluster(*seed, 8, cc)
	c.EnableObs(obs.Options{})
	cfg := vnet.DefaultConfig()
	cfg.Overcommit = 2 // node cap = 8 frames × 2 = 16 endpoints
	m := vnet.NewManager(c, cfg)
	srv := ctlplane.NewServer(m)

	ok := func(req ctlplane.Request) ctlplane.Response {
		resp := srv.Handle(req)
		if !resp.OK {
			fmt.Printf("FAIL op %s: %s\n", req.Op, resp.Err)
		}
		return resp
	}

	tenants := []struct {
		name       string
		share      int
		serverNode int
	}{
		{"gold", 4, 1},
		{"silver", 2, 2},
		{"bronze", 1, 3},
	}
	const clients = 4 // per tenant, all on node 0: 12 clients on 8 frames
	window := 100 * sim.Millisecond
	msgs := 20000
	if *quick {
		window = 50 * sim.Millisecond
		msgs = 8000
	}
	frames := c.Nodes[0].NIC.Config().Frames
	fmt.Printf("node0 NI: %d frames, admission cap %d; %d tenants × %d clients = %d endpoints (%.1f:1 overcommit)\n",
		frames, m.NodeCap(), len(tenants), clients, len(tenants)*clients,
		float64(len(tenants)*clients)/float64(frames))

	for cycle := 1; cycle <= 2; cycle++ {
		fmt.Printf("\n-- cycle %d --\n", cycle)

		// Create: tenant, NIC grants, network, client/server endpoint pairs.
		for _, tn := range tenants {
			node0, sn := 0, tn.serverNode
			ok(ctlplane.Request{Op: "create-tenant", Tenant: tn.name, Quota: 2 * clients, Share: tn.share})
			ok(ctlplane.Request{Op: "add-nic", Tenant: tn.name, Node: &node0})
			ok(ctlplane.Request{Op: "add-nic", Tenant: tn.name, Node: &sn})
			ok(ctlplane.Request{Op: "create-network", Tenant: tn.name, Network: "prod"})
			for i := 0; i < clients; i++ {
				cn, sv := 0, tn.serverNode
				ok(ctlplane.Request{Op: "create-endpoint", Tenant: tn.name, Network: "prod",
					Endpoint: fmt.Sprintf("c%d", i), Node: &cn})
				ok(ctlplane.Request{Op: "create-endpoint", Tenant: tn.name, Network: "prod",
					Endpoint: fmt.Sprintf("s%d", i), Node: &sv})
			}
		}

		if cycle == 1 {
			// Policy boundaries, typed errors (§5 admission + isolation).
			gold, _ := m.Tenant("gold")
			gnw, _ := gold.Network("prod")
			if _, err := gnw.CreateEndpoint("extra", 0); err != nil {
				fmt.Printf("quota:     %v\n", err)
			}
			filler, _ := m.CreateTenant("filler", 100, 1)
			filler.AddNIC(0)
			fnw, _ := filler.CreateNetwork("net")
			for m.NodeLoad(0) < m.NodeCap() {
				fnw.CreateEndpoint(fmt.Sprintf("f%d", m.NodeLoad(0)), 0)
			}
			if _, err := fnw.CreateEndpoint("over", 0); err != nil {
				fmt.Printf("admission: %v\n", err)
			}
			silver, _ := m.Tenant("silver")
			snw, _ := silver.Network("prod")
			gc, _ := gnw.Endpoint("c0")
			ss, _ := snw.Endpoint("s0")
			if _, err := gc.MapPeer(ss); err != nil {
				fmt.Printf("isolation: %v\n", err)
			}
			ok(ctlplane.Request{Op: "delete-tenant", Tenant: "filler"})
		}

		// Traffic: each client streams echoes to its own server, all client
		// endpoints contending for node0's frames and WRR service.
		type base struct{ svc, del int64 }
		bases := map[string]base{}
		for _, tn := range tenants {
			t, _ := m.Tenant(tn.name)
			svc, _, del := t.Serviced()
			bases[tn.name] = base{svc, del}
			for i := 0; i < clients; i++ {
				ok(ctlplane.Request{Op: "traffic", Tenant: tn.name, Network: "prod",
					Endpoint: fmt.Sprintf("c%d", i), Peer: fmt.Sprintf("s%d", i), Count: msgs})
			}
		}
		ok(ctlplane.Request{Op: "advance", Dur: window.String()})

		var totalSvc int64
		type row struct {
			name     string
			share    int
			svc, del int64
		}
		rows := make([]row, 0, len(tenants))
		for _, tn := range tenants {
			t, _ := m.Tenant(tn.name)
			svc, _, del := t.Serviced()
			r := row{tn.name, tn.share, svc - bases[tn.name].svc, del - bases[tn.name].del}
			rows = append(rows, r)
			totalSvc += r.svc
		}
		fmt.Printf("%-8s %5s %6s %10s %10s %8s %10s\n",
			"tenant", "share", "eps", "svc_msgs", "delivered", "svc_pct", "pct/share")
		for _, r := range rows {
			t, _ := m.Tenant(r.name)
			pct := 100 * float64(r.svc) / float64(totalSvc)
			fmt.Printf("%-8s %5d %6d %10d %10d %7.1f%% %9.2f%%\n",
				r.name, r.share, t.EndpointsInUse(), r.svc, r.del, pct, pct/float64(r.share))
		}
		fmt.Printf("wrr rounds on node0: %d, loiter expiries: %d\n",
			c.Nodes[0].NIC.C.Get("wrr.rounds"), c.Nodes[0].NIC.C.Get("wrr.loiter_expiry"))

		// Fault: gold reboots its own server node (index 1 of its NIC grants
		// — tenant-scoped, it cannot name anyone else's nodes). Gold's
		// delivery stalls through the outage; the others keep their shares.
		resp := ok(ctlplane.Request{Op: "inject-fault", Tenant: "gold", Plan: "reboot:node1@1ms+5ms"})
		fmt.Printf("fault (scoped to gold): %s\n", resp.Result)
		for _, tn := range tenants {
			t, _ := m.Tenant(tn.name)
			_, _, del := t.Serviced()
			bases[tn.name] = base{0, del}
		}
		ok(ctlplane.Request{Op: "advance", Dur: (20 * sim.Millisecond).String()})
		fmt.Printf("delivered through gold's 5ms server outage (20ms window): ")
		for i, tn := range tenants {
			t, _ := m.Tenant(tn.name)
			_, _, del := t.Serviced()
			if i > 0 {
				fmt.Printf(", ")
			}
			fmt.Printf("%s %d", tn.name, del-bases[tn.name].del)
		}
		fmt.Println()

		// Delete: full teardown returns every frame and name binding.
		for _, tn := range tenants {
			ok(ctlplane.Request{Op: "delete-tenant", Tenant: tn.name})
		}
		fmt.Printf("after teardown: node0 load %d/%d, tenants %d, ops so far %d\n",
			m.NodeLoad(0), m.NodeCap(), len(m.Tenants()), srv.NextSeq()-1)
	}
}
