package main

import (
	"fmt"
	"os"

	"virtnet/internal/bench"
	"virtnet/internal/sim"
)

// runServe is the serving-scale workload experiment: open-loop clients
// sweep offered load from well under to 3× the serving tier's capacity
// across scenario axes (hot keys, incast fan-in, fault churn, tenant
// interference, …), with a 20 ms end-to-end deadline on every request.
// With the reliability layer on, goodput plateaus near capacity with
// bounded p99 as offered load keeps climbing; the ablation (unbounded
// FIFO, no shedding) collapses past saturation. The default "golden"
// scenario set is captured in results_serve.txt; -scenario runs one axis,
// -scenario list shows them all.
func runServe() {
	if *scenario == "list" {
		for _, s := range bench.ServeScenarios() {
			fmt.Printf("  %-13s %s\n", s.Name, s.Desc)
		}
		return
	}
	sh := *shards
	if !flagSet("shards") {
		sh = 4 // the golden curves run sharded by default
	}
	nHosts, nServers, nClients := 256, 32, 64
	warm, win := 50*sim.Millisecond, 150*sim.Millisecond
	factors := []float64{0.25, 0.5, 1.0, 1.5, 2.0, 3.0}
	extraFactors := []float64{1.0, 2.0}
	if *quick {
		nHosts, nServers, nClients = 64, 8, 16
		warm, win = 20*sim.Millisecond, 60*sim.Millisecond
		factors = []float64{0.5, 1.0, 2.0}
		extraFactors = []float64{1.0}
	}
	if *hosts != 0 {
		nHosts = *hosts
		nServers = nHosts / 8
		nClients = nHosts / 4
	}
	header(fmt.Sprintf("serve — open-loop serving SLO curves (%d hosts, %d shards, %d servers, %d clients)",
		nHosts, sh, nServers, nClients))
	fmt.Printf("deadline 20ms end-to-end; %v measurement window after %v warmup; load in multiples of capacity\n",
		win, warm)

	type sweepStat struct {
		peak, last float64 // best and highest-factor goodput (req/s)
		lastP99    sim.Duration
	}
	runSweep := func(title, scn string, ablate bool, fs []float64) sweepStat {
		fmt.Printf("\n-- %s --\n", title)
		fmt.Printf("%-7s %10s %10s %7s %8s %8s %8s %7s %7s %7s %8s\n",
			"load", "offered/s", "good/s", "good%", "p50_ms", "p99_ms", "p999_ms", "miss", "shed", "capped", "srvshed")
		var st sweepStat
		var capacity float64
		var hedges, hedgeWins int64
		for _, f := range fs {
			res, err := bench.RunServePoint(bench.ServeConfig{
				Scenario: scn, Factor: f,
				Hosts: nHosts, Servers: nServers, Clients: nClients,
				Shards: sh, Seed: *seed, Warmup: warm, Window: win, Ablate: ablate,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(2)
			}
			capacity = res.Capacity
			hedges, hedgeWins = res.Hedges, res.HedgeWins
			slo := res.SLO
			secs := win.Seconds()
			good := float64(slo.Good) / secs
			ms := func(q float64) float64 {
				return float64(slo.Lat.Quantile(q)) / float64(sim.Millisecond)
			}
			fmt.Printf("%-7s %10.0f %10.0f %6.1f%% %8.2f %8.2f %8.2f %7d %7d %7d %8d\n",
				fmt.Sprintf("%.2fx", f), float64(slo.Offered)/secs, good,
				100*slo.GoodputFrac(), ms(0.5), ms(0.99), ms(0.999),
				slo.Missed+slo.Failed, slo.Shed, slo.Capped, res.SrvShed)
			if good > st.peak {
				st.peak = good
			}
			st.last, st.lastP99 = good, slo.Lat.Quantile(0.99)
		}
		fmt.Printf("capacity estimate: %.0f req/s\n", capacity)
		if hedges > 0 {
			fmt.Printf("hedged requests: %d issued, %d won\n", hedges, hedgeWins)
		}
		return st
	}

	if *scenario != "golden" {
		runSweep(*scenario, *scenario, false, factors)
		return
	}

	golden := []string{"baseline", "hotkey", "incast", "faultchurn"}
	stats := map[string]sweepStat{}
	for _, scn := range golden {
		var desc string
		for _, s := range bench.ServeScenarios() {
			if s.Name == scn {
				desc = s.Desc
			}
		}
		stats[scn] = runSweep(fmt.Sprintf("%s: %s", scn, desc), scn, false, factors)
	}
	stats["ablate"] = runSweep("baseline, reliability layer OFF (ablation)", "baseline", true, factors)

	for _, scn := range []string{"elephant", "straggler", "mmpp", "diurnal", "interference", "gateway", "ps"} {
		var desc string
		for _, s := range bench.ServeScenarios() {
			if s.Name == scn {
				desc = s.Desc
			}
		}
		runSweep(fmt.Sprintf("%s: %s", scn, desc), scn, false, extraFactors)
	}

	lastF := factors[len(factors)-1]
	fmt.Println()
	for _, scn := range append(golden, "ablate") {
		st := stats[scn]
		pct := 0.0
		if st.peak > 0 {
			pct = 100 * st.last / st.peak
		}
		note := "plateau holds, p99 bounded"
		if pct < 50 {
			note = "collapse"
		}
		fmt.Printf("goodput at %.1fx offered: %3.0f%% of peak, p99 %6.2fms — %s (%s)\n",
			lastF, pct, float64(st.lastP99)/float64(sim.Millisecond), scn, note)
	}
}
