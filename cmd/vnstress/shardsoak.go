package main

import (
	"fmt"

	"virtnet/internal/core"
	"virtnet/internal/fault"
	"virtnet/internal/hostos"
	"virtnet/internal/sim"
)

// runShardSoak soaks the sharded engine: a 64-host cluster partitioned into
// -shards engine shards runs a mix of shard-local and cross-shard
// request/reply streams while node-scoped faults (NI reboots, access-link
// outages with repair) churn underneath. At the end it checks:
//
//   - every pair whose hosts were never faulted completed its full quota
//     exactly once (served == replies == quota),
//   - faulted pairs recovered through retransmission and completed too
//     (reboots and repaired link outages are recoverable outages),
//   - every NI's and every shard replica's free lists are shard-local
//     (no pooled object crossed an engine boundary),
//   - the per-shard event streams drained (the cluster quiesced).
//
// Stdout is deterministic for a fixed (seed, shards): CI runs it twice and
// diffs, and runs it under -race to catch any cross-shard sharing the
// determinism diff cannot see.
func runShardSoak() {
	const nodes = 64
	const pairs = 32
	quota := int(*duration * 1000) // requests per client, scaled like a duration
	if quota <= 0 {
		quota = 200
	}
	cfg := hostos.DefaultClusterConfig()
	cl := hostos.NewShardedCluster(*seed, nodes, *shards, cfg)
	defer cl.Shutdown()
	fmt.Printf("shard soak: nodes=%d shards=%d pairs=%d quota=%d seed=%d\n",
		nodes, cl.Shards(), pairs, quota, *seed)

	// Node-scoped fault churn: two NI reboots and a repaired access-link
	// outage, all on hosts of the first few pairs. Apply dispatches each to
	// the owning shard's engine.
	plan, err := fault.Parse("reboot:node0@5ms+1ms,reboot:node33@9ms+1ms,hostlink:2@14ms+2ms")
	if err != nil {
		fatal("shardsoak plan: %v", err)
	}
	plan.Apply(cl)
	faulted := map[int]bool{0: true, 33: true, 2: true}

	type pairState struct {
		srv, cli int
		served   int64
		got      int64
		done     bool
	}
	states := make([]*pairState, pairs)
	for i := 0; i < pairs; i++ {
		// Even pairs span the cluster (cross-shard for shards > 1); odd
		// pairs stay between neighbor hosts (same leaf, same shard).
		srv := i
		cli := i + pairs
		if i%2 == 1 {
			cli = (i + 1) % pairs
		}
		ps := &pairState{srv: srv, cli: cli}
		states[i] = ps

		sb := core.Attach(cl.Nodes[srv])
		sep, err := sb.NewEndpoint(core.Key(100+i), 8)
		if err != nil {
			fatal("shardsoak server ep: %v", err)
		}
		cb := core.Attach(cl.Nodes[cli])
		cep, err := cb.NewEndpoint(core.Key(200+i), 8)
		if err != nil {
			fatal("shardsoak client ep: %v", err)
		}
		sep.Map(0, cep.Name(), core.Key(200+i))
		cep.Map(0, sep.Name(), core.Key(100+i))

		sep.SetHandler(hReq, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
			ps.served++
			tok.Reply(p, hRep, args)
		})
		cep.SetHandler(hRep, func(p *sim.Proc, tok *core.Token, _ [4]uint64, _ []byte) {
			ps.got++
		})
		cl.Nodes[srv].Spawn(fmt.Sprintf("ss-srv%d", i), func(p *sim.Proc) {
			for {
				if sep.Poll(p) == 0 {
					p.Sleep(sim.Microsecond)
				}
			}
		})
		cl.Nodes[cli].Spawn(fmt.Sprintf("ss-cli%d", i), func(p *sim.Proc) {
			for s := 0; s < quota; s++ {
				if cep.Request(p, 0, hReq, [4]uint64{uint64(i), uint64(s)}) != nil {
					return
				}
				cep.Poll(p)
			}
			for ps.got < int64(quota) {
				cep.Poll(p)
				p.Sleep(sim.Microsecond)
			}
			ps.done = true
		})
	}

	deadline := sim.Time(0).Add(60 * sim.Second)
	for cl.Now() < deadline {
		cl.RunFor(5 * sim.Millisecond)
		all := true
		for _, ps := range states {
			all = all && ps.done
		}
		if all {
			break
		}
	}
	// Settle: let retransmit timers and reboot recoveries drain.
	cl.RunFor(50 * sim.Millisecond)

	violations := 0
	var cleanPairs, faultedPairs, incomplete int
	for i, ps := range states {
		hit := faulted[ps.srv] || faulted[ps.cli]
		if hit {
			faultedPairs++
		} else {
			cleanPairs++
		}
		ok := ps.done && ps.got == int64(quota) && ps.served == int64(quota)
		if !ok {
			incomplete++
			violations++
			fmt.Printf("FAIL pair %d (srv=%d cli=%d faulted=%v): served=%d replies=%d done=%v\n",
				i, ps.srv, ps.cli, hit, ps.served, ps.got, ps.done)
		}
	}
	fmt.Printf("pairs: clean=%d faulted=%d incomplete=%d\n", cleanPairs, faultedPairs, incomplete)

	for _, n := range cl.Nodes {
		if err := n.NIC.VerifyPoolLocality(); err != nil {
			violations++
			fmt.Printf("FAIL %v\n", err)
		}
	}
	for s := 0; s < cl.Shards(); s++ {
		if err := cl.ShardNet(s).VerifyPoolLocality(); err != nil {
			violations++
			fmt.Printf("FAIL %v\n", err)
		}
	}
	fmt.Printf("pool locality: %d NIs + %d replicas clean\n", len(cl.Nodes), cl.Shards())

	sent, delivered, dropped, corrupted := cl.NetTotals()
	fmt.Printf("net: sent=%d delivered=%d dropped=%d corrupted=%d\n",
		sent, delivered, dropped, corrupted)
	if cl.Coord != nil {
		barriers, exchanged := cl.Coord.ExchangeStats()
		fmt.Printf("exchange: barriers=%d cross-shard=%d\n", barriers, exchanged)
	}
	if violations > 0 {
		fatal("shard soak: %d invariant violations", violations)
	}
	fmt.Printf("shard soak passed\n")
}
