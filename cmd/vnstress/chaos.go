package main

import (
	"errors"
	"fmt"
	"math/rand"

	"virtnet/internal/fault"
	"virtnet/internal/hostos"
	"virtnet/internal/obs"
	"virtnet/internal/reliab"
	"virtnet/internal/rpc"
	"virtnet/internal/sim"
)

// runChaos is the chaos-soak harness (-chaos): a seeded random fault
// schedule (internal/fault.RandomPlan) torments the fabric while an
// idempotent-keyed RPC population hammers two protected server nodes
// through the reliability layer. At the end it checks the robustness
// invariants:
//
//   - no hang: the cluster quiesces within a bounded settle window,
//   - exactly-once effects: every idempotency key executed at most once,
//     and every client-observed success executed exactly once, across
//     crashes, retries, and duplicate deliveries,
//   - zero leaks: client and server reliability bookkeeping (call buffers,
//     re-issue records, admission queues, deferred retries) drains to zero
//     on every surviving node,
//   - trace integrity: every finalized obs flight's per-stage durations
//     sum exactly to its end-to-end total.
//
// All randomness comes from the engine PRNG plus one dedicated plan
// generator seeded with -seed, so two runs at the same seed are
// byte-identical — CI diffs them.
func runChaos() {
	const (
		nServers   = 2
		key        = 95
		deadline   = 20 * sim.Millisecond
		attempts   = 3
		staleAfter = 500 * sim.Millisecond
	)
	if *nodes < nServers+2 {
		fatal("chaos soak needs at least %d nodes", nServers+2)
	}
	cfg := hostos.DefaultClusterConfig()
	cfg.Net.DropProb = *drop
	cl := hostos.NewCluster(*seed, *nodes, cfg)
	defer cl.Shutdown()
	o := cl.EnableObs(obs.Options{SampleEvery: 8, RingCap: 512})
	m := reliab.NewMetrics()
	m.Register(o.R)

	leaves := (*nodes + cfg.Net.HostsPerLeaf - 1) / cfg.Net.HostsPerLeaf
	plan := fault.RandomPlan(rand.New(rand.NewSource(*seed)), fault.ChaosConfig{
		Events:       24,
		Horizon:      sim.Duration(*duration * float64(sim.Second)),
		MaxOutage:    50 * sim.Millisecond,
		Nodes:        *nodes,
		Leaves:       leaves,
		Spines:       cfg.Net.Spines,
		Crash:        true,
		NoCrashBelow: nServers, // servers hold the invariant state
	})
	fmt.Printf("chaos plan: %s\n", plan)
	plan.Apply(cl)
	// Chaos crashes always restart, so Crashed() alone can't tell us which
	// client procs died with their node; the plan can.
	everCrashed := make(map[int]bool)
	for _, n := range plan.CrashTargets() {
		everCrashed[n] = true
	}

	stopAt := sim.Time(sim.Duration(*duration * float64(sim.Second)))
	stop := false

	// Protected servers: bounded admission, idempotency cache, shared
	// metrics. The effects map is the exactly-once ledger.
	effects := make(map[uint64]int)
	var servers []*rpc.Server
	for si := 0; si < nServers; si++ {
		s, err := rpc.NewServerOpts(cl.Nodes[si], key, rpc.Options{
			Queue: 64, IdemCap: 1 << 16, Metrics: m, StaleAfter: staleAfter,
		})
		if err != nil {
			fatal("server: %v", err)
		}
		s.RegisterCtx(1, func(p *sim.Proc, ctx reliab.Ctx, args []byte) ([]byte, error) {
			effects[ctx.IdemKey]++
			return args, nil
		})
		srv := s
		cl.Nodes[si].Spawn("chaos-server", func(p *sim.Proc) {
			for !stop {
				worked := srv.Poll(p) > 0
				if srv.Step(p) {
					worked = true
				}
				if !worked {
					p.Sleep(5 * sim.Microsecond)
				}
			}
		})
		servers = append(servers, s)
	}

	// Client population on the crashable nodes: unique idempotency key per
	// logical operation, bounded deadline, up to `attempts` re-attempts
	// carrying the SAME key — the retry that must not double-execute.
	nClients := *nodes - nServers
	clients := make([]*rpc.Client, nClients)
	clientDone := make([]bool, nClients)
	succKeys := make(map[uint64]bool)
	var calls, succ, failed int64
	for ci := 0; ci < nClients; ci++ {
		ci := ci
		node := cl.Nodes[nServers+ci]
		node.Spawn(fmt.Sprintf("chaos-client%d", ci), func(p *sim.Proc) {
			c, err := rpc.NewClientOpts(node, servers[ci%nServers].Name(), key, rpc.Options{Metrics: m})
			if err != nil {
				fatal("client %d: %v", ci, err)
			}
			clients[ci] = c
			rng := node.E.Rand()
			for i := 0; p.Now() < stopAt; i++ {
				opKey := uint64(nServers+ci)<<32 | uint64(i+1)
				calls++
				var ok bool
				for a := 0; a < attempts && p.Now() < stopAt.Add(deadline); a++ {
					_, err := c.CallCtx(p, 1, []byte{byte(i)},
						reliab.Ctx{Deadline: p.Now().Add(deadline), IdemKey: opKey})
					if err == nil {
						ok = true
						break
					}
					// Back off harder when the path (not just this call)
					// is bad; the breaker has already gone fast-fail.
					if errors.Is(err, rpc.ErrUnreachable) || errors.Is(err, rpc.ErrCircuitOpen) {
						p.Sleep(5 * sim.Millisecond)
					} else {
						p.Sleep(sim.Millisecond)
					}
				}
				if ok {
					succ++
					succKeys[opKey] = true
				} else {
					failed++
				}
				p.Sleep(sim.Duration(rng.Intn(400)+100) * sim.Microsecond)
			}
			// Drain: let stale results land and be acknowledged so both
			// sides retire their re-issue bookkeeping.
			until := p.Now().Add(2 * staleAfter)
			for p.Now() < until {
				if c.Poll(p) == 0 {
					p.Sleep(100 * sim.Microsecond)
				}
			}
			clientDone[ci] = true
		})
	}

	// No-hang invariant: everything must settle within a bounded window
	// after the load stops (transport retry schedules + stale sweeps).
	limit := stopAt.Add(10 * sim.Second)
	for cl.E.Now() < limit {
		cl.E.RunFor(50 * sim.Millisecond)
		if cl.E.Now() < stopAt.Add(2*staleAfter) {
			continue
		}
		settled := true
		for ci := range clientDone {
			if !clientDone[ci] && !everCrashed[nServers+ci] {
				settled = false
			}
		}
		if settled {
			break
		}
	}
	for ci := range clientDone {
		if !clientDone[ci] && !everCrashed[nServers+ci] {
			fatal("INVARIANT VIOLATION: client %d hung (no-hang)", ci)
		}
	}
	// Run past the sweep horizon so servers reclaim partial calls from
	// crashed clients, then stop the server loops.
	cl.E.RunFor(2 * staleAfter)
	stop = true
	cl.E.RunFor(10 * sim.Millisecond)

	crashed := 0
	for ci := range clientDone {
		if !clientDone[ci] {
			crashed++
		}
	}
	fmt.Printf("chaos traffic: %d ops, %d ok, %d gave up, %d clients lost to crashes\n",
		calls, succ, failed, crashed)

	// Exactly-once effects: no key may execute twice, and every key the
	// client observed as a success must have executed.
	dups, total := 0, 0
	for _, n := range effects {
		total++
		if n > 1 {
			dups++
		}
	}
	for k := range succKeys {
		if effects[k] == 0 {
			fatal("INVARIANT VIOLATION: op %d succeeded at the client but never executed", k)
		}
	}
	if dups > 0 {
		fatal("INVARIANT VIOLATION: %d of %d idempotency keys executed more than once", dups, total)
	}
	fmt.Printf("exactly-once holds: %d keys executed, 0 duplicates, %d client-confirmed\n",
		total, len(succKeys))

	// Zero leaks: every surviving party's reliability bookkeeping is empty.
	for si, s := range servers {
		if calls, reissues, queued, deferred := s.Outstanding(); calls+reissues+queued+deferred != 0 {
			fatal("INVARIANT VIOLATION: server %d leaked state: calls=%d reissues=%d queued=%d deferred=%d",
				si, calls, reissues, queued, deferred)
		}
	}
	for ci, c := range clients {
		if c == nil || !clientDone[ci] {
			continue
		}
		if results, reissues, deferred := c.Outstanding(); results+reissues+deferred != 0 {
			fatal("INVARIANT VIOLATION: client %d leaked state: results=%d reissues=%d deferred=%d",
				ci, results, reissues, deferred)
		}
	}
	fmt.Println("zero leaks: all call buffers, re-issue records, and deferred retries drained")

	// Trace integrity: per-stage durations of every finalized flight sum
	// exactly to its total.
	checked := 0
	for _, f := range o.T.Flights() {
		var sum sim.Duration
		for _, d := range f.StageTotals() {
			sum += d
		}
		if sum != f.Total() {
			fatal("INVARIANT VIOLATION: flight %d/%d stage sum %v != total %v",
				f.TraceID, f.Span, sum, f.Total())
		}
		checked++
	}
	fmt.Printf("trace integrity: %d sampled flights, stage sums exact\n", checked)

	fmt.Print(o.R.DashboardSection("reliab"))
	fmt.Printf("final sim time %v\n", sim.Duration(cl.E.Now()))
}
