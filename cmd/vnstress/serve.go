package main

import (
	"fmt"
	"math/rand"
	"strings"

	"virtnet/internal/core"
	"virtnet/internal/fault"
	"virtnet/internal/hostos"
	"virtnet/internal/obs"
	"virtnet/internal/reliab"
	"virtnet/internal/rpc"
	"virtnet/internal/serve"
	"virtnet/internal/sim"
)

// runServeSoak is the serving soak (-serve): open-loop KV clients drive a
// small protected serving tier at ~1.3× capacity through the reliability
// layer while a seeded random fault plan churns links and crashes client
// nodes. With -shards N the same soak runs on a sharded cluster, with the
// flight recorder tracing request trees across shard boundaries. Puts
// carry idempotency keys and fan out to 2 replicas. At the end it checks:
//
//   - no hang: every surviving client finishes its open-loop schedule and
//     drain within a bounded settle window,
//   - exactly-once effects: no idempotency key executed more than once on
//     any replica server, across retries and duplicate deliveries,
//   - zero leaks: every surviving client's pool and every server's
//     reliability bookkeeping drains to zero,
//   - SLO sanity: load was offered and goodput is nonzero despite the
//     deliberate overload.
//
// With -dash the serve SLO panel (offered/good/shed plus live latency
// quantiles) and a compact tail-attribution panel (per SLO class: count,
// dominant stage) print every 100 ms of simulated time; the full
// attribution report prints at the end either way.
func runServeSoak() {
	const (
		nServers   = 4
		deadline   = 20 * sim.Millisecond
		service    = 200 * sim.Microsecond
		putFrac    = 0.3
		replicas   = 2
		staleAfter = 500 * sim.Millisecond
	)
	if *nodes < nServers+2 {
		fatal("serve soak needs at least %d nodes", nServers+2)
	}
	sh := 1
	if flagSet("shards") {
		sh = *shards
	}
	cfg := hostos.DefaultClusterConfig()
	cfg.Net.DropProb = *drop
	cl := hostos.NewShardedCluster(*seed, *nodes, sh, cfg)
	defer cl.Shutdown()
	o := cl.EnableObs(obs.Options{SampleEvery: 8, RingCap: 1 << 12})

	// One reliab metrics set per shard: every actor on a shard shares its
	// shard's set (procs of one shard never run concurrently), and shard 0's
	// feeds the dashboard's reliability section. Sums happen at the end.
	ms := make([]*reliab.Metrics, cl.Shards())
	for s := range ms {
		ms[s] = reliab.NewMetrics()
	}
	ms[0].Register(o.R)
	mfor := func(node *hostos.Node) *reliab.Metrics {
		return ms[cl.ShardOfNode(int(node.ID))]
	}

	dur := sim.Duration(*duration * float64(sim.Second))
	leaves := (*nodes + cfg.Net.HostsPerLeaf - 1) / cfg.Net.HostsPerLeaf
	plan := fault.RandomPlan(rand.New(rand.NewSource(*seed+0xF00)), fault.ChaosConfig{
		Events:       16,
		Horizon:      dur,
		MaxOutage:    30 * sim.Millisecond,
		Nodes:        *nodes,
		Leaves:       leaves,
		Spines:       cfg.Net.Spines,
		Crash:        true,
		NoCrashBelow: nServers, // the serving tier holds the invariant state
	})
	fmt.Printf("serve soak plan: %s\n", plan)
	plan.Apply(cl)
	everCrashed := make(map[int]bool)
	for _, n := range plan.CrashTargets() {
		everCrashed[n] = true
	}

	stop := false
	ring := serve.NewRing(nServers, 32)
	servers := make([]*serve.KVServer, nServers)
	addrs := make([]serve.Addr, nServers)
	for i := 0; i < nServers; i++ {
		kv, err := serve.NewKVServer(cl.Nodes[i], core.Key(5000+i), serve.KVServerConfig{
			Service: service, TrackEffects: true,
			Opts: rpc.Options{Queue: 32, IdemCap: 1 << 16, Metrics: mfor(cl.Nodes[i]), StaleAfter: staleAfter},
		})
		if err != nil {
			fatal("kv server: %v", err)
		}
		servers[i] = kv
		addrs[i] = kv.Addr()
		cl.Nodes[i].Spawn(fmt.Sprintf("kv-serve%d", i), func(p *sim.Proc) {
			kv.Serve(p, func() bool { return stop })
		})
	}

	// Per-client SLOs (procs on different shards run concurrently, so a
	// shared accumulator would race); the dashboard's serve panel reads a
	// merged view at snapshot time, which only happens while the engines
	// are parked between RunFor rounds.
	workPerOp := (1 - putFrac) + putFrac*replicas
	capacity := float64(nServers) * float64(sim.Second) / float64(service) / workPerOp
	nClients := *nodes - nServers
	perClient := 1.3 * capacity / float64(nClients)
	slos := make([]*serve.SLO, nClients)
	for ci := range slos {
		slos[ci] = serve.NewSLO()
	}
	merged := func() *serve.SLO {
		t := serve.NewSLO()
		for _, s := range slos {
			t.Merge(s)
		}
		return t
	}
	serve.RegisterMerged(o.R, "serve", merged)

	clientDone := make([]bool, nClients)
	pools := make([]*rpc.Pool, nClients)
	for ci := 0; ci < nClients; ci++ {
		ci := ci
		node := cl.Nodes[nServers+ci]
		node.Spawn(fmt.Sprintf("serve-client%d", ci), func(p *sim.Proc) {
			w, err := serve.NewKVWorkload(node, addrs, serve.KVWorkloadConfig{
				Ring:     ring,
				Keys:     serve.NewHotKeys(10000, 4, 0.3, serve.DeriveRNG(*seed, uint64(0x20000+ci))),
				PutFrac:  putFrac,
				Replicas: replicas,
				ValSize:  64,
				IdemPuts: true,
				ClientID: uint64(ci + 1),
			}, rpc.Options{Metrics: mfor(node)}, serve.DeriveRNG(*seed, uint64(0x30000+ci)))
			if err != nil {
				fatal("workload %d: %v", ci, err)
			}
			pools[ci] = w.Pool()
			ccfg := serve.ClientConfig{
				Arr:       serve.NewPoisson(perClient, serve.DeriveRNG(*seed, uint64(0x10000+ci))),
				Deadline:  deadline,
				MaxOut:    64,
				Stop:      sim.Time(dur),
				MeasureTo: sim.Time(dur),
			}
			if node.Obs != nil {
				ccfg.Tracer = node.Obs.T
				ccfg.TraceNode = int(node.ID)
			}
			serve.RunClient(p, w, ccfg, slos[ci])
			// Poll the pool until its re-issue bookkeeping drains (late
			// returns from fault outages can still be in flight).
			until := p.Now().Add(2 * staleAfter)
			for p.Now() < until {
				w.Poll(p)
				if r, ri, d := w.Pool().Outstanding(); r+ri+d == 0 {
					break
				}
				p.Sleep(100 * sim.Microsecond)
			}
			clientDone[ci] = true
		})
	}

	// No-hang invariant: surviving clients settle within a bounded window.
	stopAt := sim.Time(dur)
	limit := stopAt.Add(10 * sim.Second)
	lastDash := cl.Now()
	for cl.Now() < limit {
		cl.RunFor(10 * sim.Millisecond)
		if *dash && cl.Now().Sub(lastDash) >= 100*sim.Millisecond {
			fmt.Print(o.R.DashboardSection("serve"))
			fmt.Print(attrPanel(obs.Attribute(cl.MergedFlights(), 1)))
			lastDash = cl.Now()
		}
		settled := cl.Now() >= stopAt.Add(2*deadline)
		for ci := range clientDone {
			if !clientDone[ci] && !everCrashed[nServers+ci] {
				settled = false
			}
		}
		if settled {
			break
		}
	}
	for ci := range clientDone {
		if !clientDone[ci] && !everCrashed[nServers+ci] {
			fatal("INVARIANT VIOLATION: serve client %d hung (no-hang)", ci)
		}
	}
	// Run past the stale-sweep horizon so servers reclaim partial calls
	// from crashed clients. A reply bouncing off a crashed client re-arms
	// its reissue record's stale clock on every return-to-sender cycle, so
	// the last record can still be inside its stale window when the first
	// horizon passes — keep serving until every server drains (bounded).
	drainUntil := cl.Now().Add(6 * staleAfter)
	for {
		cl.RunFor(2 * staleAfter)
		clear := true
		for _, kv := range servers {
			if calls, reissues, queued, deferred := kv.S.Outstanding(); calls+reissues+queued+deferred != 0 {
				clear = false
				break
			}
		}
		if clear || cl.Now() >= drainUntil {
			break
		}
	}
	stop = true
	cl.RunFor(10 * sim.Millisecond)

	crashed := 0
	for ci := range clientDone {
		if !clientDone[ci] {
			crashed++
		}
	}
	slo := merged()
	fmt.Printf("serve traffic: %s\n", slo.Line(dur))
	fmt.Printf("clients: %d total, %d lost to crashes; capacity %.0f req/s offered at 1.3x across %d shards\n",
		nClients, crashed, capacity, cl.Shards())

	// SLO sanity: the open loop must have offered load, and the protected
	// tier must have served a real fraction of it despite the overload.
	if slo.Offered == 0 || slo.Good == 0 {
		fatal("INVARIANT VIOLATION: no load served (offered=%d good=%d)", slo.Offered, slo.Good)
	}

	// Exactly-once effects: across retries, duplicate deliveries, and fault
	// churn, no idempotency key may reach a put handler twice.
	var applied, keys int64
	dups := 0
	for _, kv := range servers {
		applied += kv.Applied
		for k, n := range kv.Ledger {
			keys++
			if n > 1 {
				dups++
				fmt.Printf("  key %x executed %d times\n", k, n)
			}
		}
	}
	if dups > 0 {
		fatal("INVARIANT VIOLATION: %d of %d idempotency keys executed more than once", dups, keys)
	}
	var absorbed int64
	for _, m := range ms {
		absorbed += m.Get("idem_hits") + m.Get("idem_dup")
	}
	fmt.Printf("exactly-once holds: %d puts applied across %d replicas, 0 duplicate executions (%d duplicates absorbed by the idem cache)\n",
		applied, nServers, absorbed)

	// Zero leaks: surviving clients' pools and every server drain to zero.
	for ci, pl := range pools {
		if pl == nil || !clientDone[ci] {
			continue
		}
		if r, ri, d := pl.Outstanding(); r+ri+d != 0 {
			fatal("INVARIANT VIOLATION: client %d leaked pool state: results=%d reissues=%d deferred=%d", ci, r, ri, d)
		}
	}
	for si, kv := range servers {
		if calls, reissues, queued, deferred := kv.S.Outstanding(); calls+reissues+queued+deferred != 0 {
			fatal("INVARIANT VIOLATION: server %d leaked state: calls=%d reissues=%d queued=%d deferred=%d",
				si, calls, reissues, queued, deferred)
		}
	}
	fmt.Println("zero leaks: all pool slots, re-issue records, and admission queues drained")

	// Tail attribution over the soak's sampled request trees — the merged
	// cross-shard timeline folded per SLO class.
	cl.SweepOpenFlights("run-end")
	flights := cl.MergedFlights()
	fmt.Printf("tail attribution over %d merged flights:\n", len(flights))
	fmt.Print(obs.Attribute(flights, 2).Render())

	fmt.Print(o.R.DashboardSection("serve"))
	fmt.Printf("final sim time %v\n", sim.Duration(cl.Now()))
}

// attrPanel renders the compact one-line tail-attribution panel the -dash
// loop prints alongside the SLO section: per SLO class, how many sampled
// requests have finished and which stage dominates their cost.
func attrPanel(a *obs.Attribution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[serve.tailat] attributable=%d", a.Roots)
	for i := range a.Classes {
		ca := &a.Classes[i]
		if ca.N == 0 {
			continue
		}
		st, frac := ca.DominantStage()
		fmt.Fprintf(&b, "  %s:%d dom=%s %.0f%%", ca.Class, ca.N, st, 100*frac)
	}
	b.WriteString("\n")
	return b.String()
}
