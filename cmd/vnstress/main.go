// Command vnstress soak-tests the virtual network stack under adversarial
// conditions: random request/reply traffic across a random endpoint mesh,
// packet loss, endpoint churn (create/free while traffic flows), periodic
// spine hot-swaps, live endpoint migration churn, and overcommitted NI
// frames. It verifies the system's core invariants at the end:
//
//   - exactly-once delivery for every request that was not returned,
//   - credit conservation (windows return to full once quiescent),
//   - no leaked endpoint frames,
//   - the cluster remains live (no deadlock) throughout.
//
// With -migrate (on by default) a migrator live-moves the peer endpoints
// round-robin between nodes while the traffic runs, so every invariant must
// also hold across repeated relocations under loss and frame overcommit.
//
// With -faultplan a scripted fault schedule (internal/fault syntax, e.g.
// "link:3-7@0.2s+0.5s,crash:node9@1s") runs against the mesh; crashed nodes
// are allowed to lose their bounded in-flight window, and the invariants are
// re-checked with exactly that allowance — anything beyond it is still a
// violation.
//
// With -coll an mpi world rides on the same cluster running continuous
// small-vector allreduce rounds, so the collective engine's tag matching and
// fault-abort path soak under the same loss, churn, and crash schedule as
// the raw AM traffic. The invariant is no-hang: every rank either completes
// its rounds or (when the plan crashes a node) surfaces ErrUnreachable.
//
// With -dash the unified metrics registry prints a dashboard of every
// layer's counters and gauges each 100 ms of simulated time (deltas against
// the previous snapshot included). The dashboard is observability-only: it
// never perturbs the simulation, so outputs with and without it agree.
//
// Usage: vnstress [-seed N] [-nodes N] [-duration D-sim-seconds] [-drop P]
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the soak run
// for engine performance work.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"virtnet/internal/coll"
	"virtnet/internal/core"
	"virtnet/internal/fault"
	"virtnet/internal/hostos"
	"virtnet/internal/migrate"
	"virtnet/internal/mpi"
	"virtnet/internal/netsim"
	"virtnet/internal/obs"
	"virtnet/internal/nic"
	"virtnet/internal/sim"
)

var (
	seed       = flag.Int64("seed", 1, "simulation seed")
	nodes      = flag.Int("nodes", 12, "cluster size")
	duration   = flag.Float64("duration", 2.0, "simulated seconds of load")
	drop       = flag.Float64("drop", 0.02, "packet loss probability")
	churn      = flag.Bool("churn", true, "create/free endpoints during the run")
	swap       = flag.Bool("swap", true, "hot-swap a spine switch during the run")
	migr       = flag.Bool("migrate", true, "live-migrate peer endpoints during the run")
	faultplan  = flag.String("faultplan", "", "scripted fault schedule (internal/fault syntax), e.g. link:3-7@0.2s+0.5s,crash:node9@1s")
	collOn     = flag.Bool("coll", false, "soak the collective engine with continuous allreduce rounds")
	chaos      = flag.Bool("chaos", false, "run the chaos soak: random fault schedule + idempotent RPC population with exactly-once/leak/trace invariants")
	serveSoak  = flag.Bool("serve", false, "run the serving soak: open-loop KV clients at 1.3x capacity + fault churn with exactly-once/no-hang/zero-leak invariants")
	dash       = flag.Bool("dash", false, "print the unified metrics dashboard every 100 ms of simulated time")
	shardsoak  = flag.Bool("shardsoak", false, "run the sharded-engine soak: mixed local/cross-shard traffic + node-scoped fault churn on a sharded cluster")
	shards     = flag.Int("shards", 2, "engine shards for -shardsoak and -serve (1 = classic single engine; -serve defaults to 1 when unset)")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

const (
	hReq = 1
	hRep = 2
)

type peer struct {
	id     int
	ep     *core.Endpoint // current live handle; swapped on migration
	epID   int
	node   *hostos.Node
	sent   int64
	gotRep int64
	served int64
	// retReq counts this peer's requests returned undeliverable; retRep
	// counts replies it issued that came back.
	retReq int64
	retRep int64
}

func main() {
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	if *shardsoak {
		runShardSoak()
		return
	}
	if *chaos {
		runChaos()
		return
	}
	if *serveSoak {
		runServeSoak()
		return
	}
	cfg := hostos.DefaultClusterConfig()
	cfg.Net.DropProb = *drop
	cfg.NIC.Frames = 8
	cl := hostos.NewCluster(*seed, *nodes, cfg)
	defer cl.Shutdown()

	// Metrics-only observability (no flight recorder, no PRNG draw): the
	// soak's own outputs stay byte-identical whether or not the dashboard is
	// on, so -dash never interferes with determinism comparisons.
	var dashObs *obs.Obs
	if *dash {
		dashObs = cl.EnableObs(obs.Options{SnapshotEvery: 100 * sim.Millisecond})
	}

	if *faultplan != "" {
		pl, err := fault.Parse(*faultplan)
		if err != nil {
			fatal("faultplan: %v", err)
		}
		pl.Apply(cl)
		fmt.Printf("fault plan: %s\n", pl)
	}

	var svc *migrate.Service
	if *migr {
		var err error
		if svc, err = migrate.NewService(cl); err != nil {
			fatal("migration service: %v", err)
		}
	}

	// Two endpoints per node, all meshed: 2*nodes endpoints against
	// 8 frames per NI — overcommitted on every node.
	var peers []*peer
	var eps []*core.Endpoint
	for n := 0; n < *nodes; n++ {
		for k := 0; k < 2; k++ {
			b := core.Attach(cl.Nodes[n])
			if svc != nil {
				b.SetResolver(svc.Dir)
			}
			ep, err := b.NewEndpoint(core.Key(5000+len(peers)), 2**nodes+4)
			if err != nil {
				fatal("endpoint: %v", err)
			}
			peers = append(peers, &peer{id: len(peers), ep: ep, epID: ep.Segment().EP.ID, node: cl.Nodes[n]})
			eps = append(eps, ep)
		}
	}
	if err := core.MakeVirtualNetwork(eps); err != nil {
		fatal("mesh: %v", err)
	}

	stopAt := sim.Time(sim.Duration(*duration * float64(sim.Second)))
	quiesced := false
	for _, pr := range peers {
		pr := pr
		pr.ep.SetHandler(hReq, func(p *sim.Proc, tok *core.Token, args [4]uint64, payload []byte) {
			pr.served++
			tok.Reply(p, hRep, args)
		})
		pr.ep.SetHandler(hRep, func(p *sim.Proc, tok *core.Token, args [4]uint64, _ []byte) {
			pr.gotRep++
		})
		pr.ep.SetReturnHandler(func(p *sim.Proc, _ nic.NackReason, _, h int, _ [4]uint64, _ []byte) {
			if h == hReq {
				pr.retReq++
			} else {
				pr.retRep++
			}
		})
		if svc != nil {
			// Handlers, counters, and translations travel with the image; the
			// swap retargets this peer's send/poll loop at the new handle.
			svc.Manage(pr.ep, func(n *core.Endpoint) { pr.ep = n })
		}
		pr.node.Spawn(fmt.Sprintf("peer%d", pr.id), func(p *sim.Proc) {
			rng := pr.node.E.Rand()
			for p.Now() < stopAt {
				dst := rng.Intn(len(peers))
				if dst == pr.id {
					dst = (dst + 1) % len(peers)
				}
				var err error
				if rng.Intn(4) == 0 {
					err = pr.ep.RequestBulk(p, dst, hReq, make([]byte, 512+rng.Intn(7000)), [4]uint64{})
				} else {
					err = pr.ep.Request(p, dst, hReq, [4]uint64{})
				}
				if err == core.ErrMoved {
					// Our own endpoint is mid-migration; the Manage swap will
					// retarget pr.ep once it lands.
					p.Sleep(100 * sim.Microsecond)
					continue
				}
				if err != nil {
					fatal("peer %d request: %v", pr.id, err)
				}
				pr.sent++
				pr.ep.Poll(p)
				p.Sleep(sim.Duration(rng.Intn(200)+20) * sim.Microsecond)
			}
			// Keep servicing the endpoint until the whole mesh quiesces.
			for !quiesced {
				if pr.ep.Poll(p) == 0 {
					p.Sleep(50 * sim.Microsecond)
				}
			}
		})
	}

	// Collective soak: an mpi world on the same nodes runs small allreduce
	// rounds back to back for the whole load window. Rounds use the Auto
	// selector, so this exercises the binomial tree under the same drops,
	// swaps, and crashes as the raw AM mesh. A fault-plan crash must abort
	// the survivors with ErrUnreachable — never hang them.
	var collW *mpi.World
	var collRounds int64
	var collAborts int64
	var collDone []bool
	if *collOn {
		w, err := mpi.NewWorld(cl, *nodes, nil)
		if err != nil {
			fatal("coll world: %v", err)
		}
		collW = w
		collDone = make([]bool, *nodes)
		w.Launch(func(p *sim.Proc, cm *mpi.Comm) {
			defer func() { collDone[cm.Rank()] = true }()
			vec := make([]float64, 64)
			for i := 1; i < len(vec); i++ {
				vec[i] = float64(cm.Rank() + i)
			}
			for {
				// Termination must itself be a collective decision: ranks
				// checking the clock independently can disagree on whether
				// round k+1 happens and strand each other in Recv. Rank 0
				// decides, and the verdict rides in element 0 of the round's
				// own result, so every rank breaks after the same round.
				vec[0] = 0
				if cm.Rank() == 0 && p.Now() < stopAt {
					vec[0] = 1
				}
				out, err := cm.AllreduceAlg(p, vec, mpi.OpSum, coll.Auto)
				if err != nil {
					if errors.Is(err, mpi.ErrUnreachable) {
						collAborts++
						return
					}
					fatal("coll rank %d: %v", cm.Rank(), err)
				}
				if out[0] == 0 {
					return
				}
				if cm.Rank() == 0 {
					collRounds++
				}
				p.Sleep(2 * sim.Millisecond)
			}
		})
	}

	// Churn: an extra endpoint per node is created, exercised, and freed in
	// a loop, forcing continual remapping against the static mesh.
	if *churn {
		for n := 0; n < *nodes; n++ {
			node := cl.Nodes[n]
			node.Spawn("churn", func(p *sim.Proc) {
				i := 0
				for p.Now() < stopAt {
					b := core.Attach(node)
					ep, err := b.NewEndpoint(core.Key(9000+int(node.ID)*100+i%50), 4)
					if err != nil {
						fatal("churn endpoint: %v", err)
					}
					// Touch it so it faults resident, then free it.
					ep.SetEventMask(true)
					ep.Bundle().WaitTimeout(p, sim.Duration(200+i%300)*sim.Microsecond)
					b.Close(p)
					i++
					p.Sleep(500 * sim.Microsecond)
				}
			})
		}
	}

	// Migration churn: live-move peer endpoints round-robin onto random
	// other nodes while the traffic runs. Every peer keeps sending and
	// serving across its own relocations.
	moves := 0
	if svc != nil {
		cl.E.Spawn("migrator", func(p *sim.Proc) {
			rng := cl.E.Rand()
			for i := 0; p.Now() < stopAt; i++ {
				p.Sleep(40 * sim.Millisecond)
				cur := peers[i%len(peers)].ep
				if cur.Moved() || cur.Bundle().Node.Crashed() {
					continue
				}
				dst := netsim.NodeID(rng.Intn(*nodes))
				if dst == cur.Bundle().Node.ID {
					dst = netsim.NodeID((int(dst) + 1) % *nodes)
				}
				if cl.Nodes[dst].Crashed() {
					continue
				}
				if _, err := svc.Move(p, cur, dst); err != nil {
					// A fault-plan crash can land on either end mid-move;
					// skipping the move is the correct planned-movement
					// response to an unplanned failure.
					if errors.Is(err, migrate.ErrDestUnreachable) || errors.Is(err, hostos.ErrCrashed) {
						continue
					}
					fatal("migrate peer %d: %v", i%len(peers), err)
				}
				moves++
			}
		})
	}

	// Periodic spine hot-swap.
	if *swap {
		cl.E.Spawn("swapper", func(p *sim.Proc) {
			s := 0
			for p.Now() < stopAt {
				p.Sleep(100 * sim.Millisecond)
				cl.Net.SetSpineDown(s%5, true)
				p.Sleep(20 * sim.Millisecond)
				cl.Net.SetSpineDown(s%5, false)
				s++
			}
		})
	}

	// A crashed workstation loses whatever sat in its bounded NI state at the
	// instant of failure — queued sends, per-channel frames in flight, and
	// delivered-but-unserved receives (§3.2 bounds all three). Each peer on
	// an ever-crashed node therefore earns a fixed loss allowance; everything
	// beyond it is still an invariant violation. Zero crashes → zero
	// allowance → checks identical to the fault-free run.
	deadPeer := func(pr *peer) bool {
		return pr.node.Crashed() || pr.node.NIC.C.Get("nic.restart") > 0
	}
	allowance := func() int64 {
		perPeer := int64(cfg.NIC.SendQDepth*2 + cfg.NIC.Channels*2 + cfg.NIC.RecvQDepth*2)
		var a int64
		for _, pr := range peers {
			if deadPeer(pr) {
				a += perPeer
			}
		}
		return a
	}

	// Drive to completion: every request must be served or returned, and
	// every reply delivered or returned (no deadlock, no loss).
	limit := stopAt.Add(200 * sim.Second)
	accounted := func() bool {
		var sent, rep, served, rq, rp int64
		for _, pr := range peers {
			sent += pr.sent
			rep += pr.gotRep
			served += pr.served
			rq += pr.retReq
			rp += pr.retRep
		}
		allow := allowance()
		if served+rq+allow < sent || rep+rp+allow < served {
			return false
		}
		// Credits settle only when every deposited reply and return has been
		// dispatched; a delivered-but-returned message can satisfy the sums
		// above while its twin still sits in a queue.
		for _, pr := range peers {
			if deadPeer(pr) {
				continue
			}
			if pr.ep.Segment().EP.PendingRecvs() > 0 {
				return false
			}
		}
		return true
	}
	// With a crash in the plan, the allowance makes the sums tolerant — they
	// can pass while live messages are merely late (a return bound for a
	// crashed node takes up to ReturnToSenderAfter, and a requester blocked
	// on the last credit can chain another send behind it). So the break
	// additionally requires the totals to have been static for longer than
	// the longest silent in-flight gap. Without crashes the sums are exact
	// and the break is immediate, as before.
	settle := cfg.NIC.ReturnToSenderAfter + 200*sim.Millisecond
	signature := func() [5]int64 {
		var s [5]int64
		for _, pr := range peers {
			s[0] += pr.sent
			s[1] += pr.gotRep
			s[2] += pr.served
			s[3] += pr.retReq
			s[4] += pr.retRep
		}
		return s
	}
	lastSig := signature()
	lastChange := cl.E.Now()
	lastDash := cl.E.Now()
	for cl.E.Now() < limit {
		cl.E.RunFor(10 * sim.Millisecond)
		if dashObs != nil && cl.E.Now().Sub(lastDash) >= 100*sim.Millisecond {
			fmt.Print(dashObs.R.Dashboard())
			lastDash = cl.E.Now()
		}
		if sig := signature(); sig != lastSig {
			lastSig, lastChange = sig, cl.E.Now()
		}
		if cl.E.Now() >= stopAt && accounted() {
			if allowance() == 0 || cl.E.Now().Sub(lastChange) >= settle {
				break
			}
		}
	}
	quiesced = true
	cl.E.RunFor(50 * sim.Millisecond) // let peer procs observe and exit

	// ---- Invariant checks ----
	var totSent, totRep, totServed, totRetReq, totRetRep int64
	for _, pr := range peers {
		totSent += pr.sent
		totRep += pr.gotRep
		totServed += pr.served
		totRetReq += pr.retReq
		totRetRep += pr.retRep
	}
	fmt.Printf("traffic: %d requests, %d served, %d replies, %d req-returns, %d rep-returns\n",
		totSent, totServed, totRep, totRetReq, totRetRep)
	allow := allowance()
	deadPeers := 0
	for _, pr := range peers {
		if deadPeer(pr) {
			deadPeers++
		}
	}
	if deadPeers > 0 {
		fmt.Printf("crashed: %d peer endpoint(s) lost to node crashes; loss allowance %d messages\n",
			deadPeers, allow)
	}

	// Every request must be served or returned — nothing may be lost beyond
	// the crash allowance. The converse overlap (served AND returned) is the
	// paper's "barring unrecoverable transport conditions" escape hatch: if
	// every ack of a delivered message is lost for the full unreachability
	// bound, the transport returns it anyway (two-generals ambiguity). That
	// must be vanishingly rare.
	if totServed+totRetReq+allow < totSent {
		fatal("INVARIANT VIOLATION: served %d + returned %d + allowance %d < sent %d (lost requests)",
			totServed, totRetReq, allow, totSent)
	}
	ambiguousReq := totServed + totRetReq - totSent
	if ambiguousReq < 0 {
		ambiguousReq = 0 // crash losses, inside the allowance just checked
	}
	if totRep+totRetRep+allow < totServed {
		fatal("INVARIANT VIOLATION: replies %d + returned replies %d + allowance %d < served %d (lost replies)",
			totRep, totRetRep, allow, totServed)
	}
	ambiguousRep := totRep + totRetRep - totServed
	if ambiguousRep < 0 {
		ambiguousRep = 0
	}
	if ambiguous := ambiguousReq + ambiguousRep; ambiguous > 0 {
		if float64(ambiguous) > 0.001*float64(totSent)+float64(allow) {
			fatal("INVARIANT VIOLATION: %d delivered-but-returned messages (%.4f%% of traffic)",
				ambiguous, 100*float64(ambiguous)/float64(totSent))
		}
		fmt.Printf("note: %d delivered-but-returned messages (unrecoverable-condition ambiguity, %.5f%%)\n",
			ambiguous, 100*float64(ambiguous)/float64(totSent))
	}
	// Credit conservation: each request restores its credit via the reply
	// or via its own return. The one leak the AM-II credit scheme allows is
	// a *returned reply* (the requester never hears back), so the global
	// deficit must equal the count of returned replies exactly. Crashed
	// endpoints are out of the scan: their segments are gone, and live
	// translations toward them legitimately hold un-restored credits inside
	// the allowance.
	window := cfg.NIC.RecvQDepth
	deficit := int64(0)
	for _, pr := range peers {
		if deadPeer(pr) {
			continue
		}
		for i := 0; i < 2**nodes; i++ {
			if !pr.ep.TranslationValid(i) {
				continue
			}
			deficit += int64(window - pr.ep.Credits(i))
		}
	}
	// A delivered-but-returned request restores its credit twice, and a
	// delivered-but-returned reply restores a credit its return did not,
	// so each ambiguous message lowers the deficit by one.
	want := totRetRep - ambiguousReq - ambiguousRep
	diff := deficit - want
	if diff < 0 {
		diff = -diff
	}
	if diff > ambiguousReq+ambiguousRep+allow {
		fatal("INVARIANT VIOLATION: credit deficit %d, expected %d (+-%d ambiguity/allowance)",
			deficit, want, ambiguousReq+ambiguousRep+allow)
	}
	fmt.Println("invariants hold: exactly-once accounting, credit conservation, liveness")

	remaps := int64(0)
	for _, n := range cl.Nodes {
		remaps += n.Driver.Remaps()
	}
	if svc != nil {
		var redirects, refreshes int64
		for _, pr := range peers {
			redirects += pr.ep.Stats.Redirects
			refreshes += pr.ep.Stats.Refreshes
		}
		fmt.Printf("migrations: %d live moves; %d redirects absorbed, %d translation refreshes\n",
			moves, redirects, refreshes)
	}
	if collW != nil {
		// No-hang invariant: give any in-flight round bounded time to land,
		// then every rank must have exited — completed or aborted — unless
		// its own node crashed (its proc dies with the node).
		for i := 0; i < 5000; i++ {
			alive := 0
			for r := 0; r < *nodes; r++ {
				if !collDone[r] && !cl.Nodes[r].Crashed() {
					alive++
				}
			}
			if alive == 0 {
				break
			}
			cl.E.RunFor(sim.Millisecond)
		}
		for r := 0; r < *nodes; r++ {
			if !collDone[r] && !cl.Nodes[r].Crashed() {
				fatal("INVARIANT VIOLATION: coll rank %d hung in allreduce", r)
			}
		}
		fmt.Printf("collectives: %d allreduce rounds, %d fault aborts, dead ranks %v\n",
			collRounds, collAborts, collW.DeadRanks())
	}
	fmt.Printf("endpoint remaps across cluster: %d; final sim time %v\n",
		remaps, sim.Duration(cl.E.Now()))
}

func fatal(f string, args ...any) {
	fmt.Fprintf(os.Stderr, "vnstress: "+f+"\n", args...)
	os.Exit(1)
}

// flagSet reports whether the named flag was set explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}
