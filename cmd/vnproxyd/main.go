// Command vnproxyd is the long-lived control-plane daemon: it hosts a
// persistent simulated cluster and serves the ctlplane API over a local
// unix socket (newline-delimited JSON), surviving tenant churn — the
// ncproxy-style NetworkConfigProxy surface of ROADMAP item 2.
//
// Two modes:
//
//	vnproxyd -socket /tmp/vnproxyd.sock     # serve until interrupted
//	vnproxyd -script session.ctl            # replay a scripted session to
//	                                        # stdout and exit (CI uses this
//	                                        # for byte-determinism checks)
//
// Virtual time only advances when a request asks it to ("advance" op) or a
// blocking op needs it, so the daemon is deterministic: the response stream
// is a pure function of the seed and the request sequence. Requests from
// concurrent connections are serialized in arrival order through a single
// executor goroutine that owns the simulation engine.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"virtnet/internal/ctlplane"
	"virtnet/internal/hostos"
	"virtnet/internal/obs"
	"virtnet/internal/vnet"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 8, "cluster size (fixed for the daemon's lifetime)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		socket     = flag.String("socket", "/tmp/vnproxyd.sock", "unix socket path to serve the control API on")
		script     = flag.String("script", "", "replay a scripted session from this file (- for stdin) to stdout and exit")
		overcommit = flag.Int("overcommit", 4, "endpoints admitted per node, as a multiple of NI frames")
		quiet      = flag.Bool("q", false, "suppress the startup banner")
	)
	flag.Parse()

	srv := newDaemon(*seed, *nodes, *overcommit)

	if *script != "" {
		in := os.Stdin
		if *script != "-" {
			f, err := os.Open(*script)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
		if err := srv.RunScript(in, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	os.Remove(*socket)
	ln, err := net.Listen("unix", *socket)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.Remove(*socket)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "vnproxyd: %d-node cluster (seed %d), API v%d on %s\n",
			*nodes, *seed, ctlplane.Version, *socket)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ln.Close()
	}()
	serve(ln, srv)
}

// newDaemon builds the persistent cluster and its control server. The obs
// registry is enabled first so QueryMetrics sees every layer's counters.
func newDaemon(seed int64, nodes, overcommit int) *ctlplane.Server {
	c := hostos.NewCluster(seed, nodes, hostos.DefaultClusterConfig())
	c.EnableObs(obs.Options{})
	cfg := vnet.DefaultConfig()
	cfg.Overcommit = overcommit
	return ctlplane.NewServer(vnet.NewManager(c, cfg))
}

// call is one request line awaiting execution; reply receives the response.
type call struct {
	line  []byte
	reply chan []byte
}

// serve accepts connections until the listener closes. Connection readers
// feed request lines into a single executor goroutine that owns the engine,
// so concurrent clients see a consistent, deterministically-ordered cluster.
func serve(ln net.Listener, srv *ctlplane.Server) {
	calls := make(chan call)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range calls {
			c.reply <- srv.HandleLine(c.line)
		}
	}()
	var (
		wg    sync.WaitGroup
		conns []net.Conn
	)
	for {
		conn, err := ln.Accept()
		if err != nil {
			break
		}
		conns = append(conns, conn)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			w := bufio.NewWriter(conn)
			reply := make(chan []byte, 1)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				calls <- call{line: []byte(line), reply: reply}
				w.Write(<-reply)
				w.WriteByte('\n')
				if err := w.Flush(); err != nil {
					return
				}
			}
		}(conn)
	}
	// Listener closed (shutdown): drop live connections so their readers
	// finish, then retire the executor.
	for _, c := range conns {
		c.Close()
	}
	wg.Wait()
	close(calls)
	<-done
}
