package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"virtnet/internal/ctlplane"
)

// TestDaemonSurvivesTenantChurn drives the daemon over its unix socket
// through two full tenant create→traffic→fault→delete cycles without a
// restart, which is the acceptance bar for "long-lived".
func TestDaemonSurvivesTenantChurn(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "vnproxyd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := newDaemon(1, 4, 4)
	served := make(chan struct{})
	go func() {
		serve(ln, srv)
		close(served)
	}()
	defer func() {
		ln.Close()
		<-served
	}()

	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)

	do := func(req string) ctlplane.Response {
		t.Helper()
		if _, err := fmt.Fprintln(conn, req); err != nil {
			t.Fatal(err)
		}
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp ctlplane.Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatalf("bad response %q: %v", line, err)
		}
		return resp
	}

	ok := func(req string) ctlplane.Response {
		t.Helper()
		resp := do(req)
		if !resp.OK {
			t.Fatalf("request %s failed: %s", req, resp.Err)
		}
		return resp
	}

	for cycle, tenant := range []string{"alpha", "beta"} {
		ok(fmt.Sprintf(`{"op":"create-tenant","tenant":%q,"quota":8,"share":2}`, tenant))
		ok(fmt.Sprintf(`{"op":"add-nic","tenant":%q,"node":0}`, tenant))
		ok(fmt.Sprintf(`{"op":"add-nic","tenant":%q,"node":%d}`, tenant, 1+cycle))
		ok(fmt.Sprintf(`{"op":"create-network","tenant":%q,"network":"prod"}`, tenant))
		ok(fmt.Sprintf(`{"op":"create-endpoint","tenant":%q,"network":"prod","endpoint":"client","node":0}`, tenant))
		ok(fmt.Sprintf(`{"op":"create-endpoint","tenant":%q,"network":"prod","endpoint":"server","node":%d}`, tenant, 1+cycle))
		ok(fmt.Sprintf(`{"op":"traffic","tenant":%q,"network":"prod","endpoint":"client","peer":"server","count":30}`, tenant))
		ok(`{"op":"advance","dur":"40ms"}`)
		ok(fmt.Sprintf(`{"op":"inject-fault","tenant":%q,"plan":"reboot:node1@1ms"}`, tenant))
		ok(`{"op":"advance","dur":"40ms"}`)

		snap := ok(fmt.Sprintf(`{"op":"snapshot","tenant":%q}`, tenant))
		var got struct {
			Tenants []struct {
				Name      string `json:"name"`
				Delivered int64  `json:"delivered"`
			} `json:"tenants"`
		}
		if err := json.Unmarshal(snap.Result, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Tenants) != 1 || got.Tenants[0].Name != tenant {
			t.Fatalf("cycle %d snapshot tenants = %+v", cycle, got.Tenants)
		}
		if got.Tenants[0].Delivered == 0 {
			t.Fatalf("cycle %d: tenant %s delivered no traffic", cycle, tenant)
		}

		ok(fmt.Sprintf(`{"op":"delete-tenant","tenant":%q}`, tenant))
		list := ok(`{"op":"list-networks"}`)
		if string(list.Result) != "null" {
			t.Fatalf("cycle %d: networks remain after delete: %s", cycle, list.Result)
		}
	}

	// A second connection reuses the same live cluster (no restart).
	conn2, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	rd2 := bufio.NewReader(conn2)
	fmt.Fprintln(conn2, `{"op":"query-metrics","prefix":"vnet.tenant.delete"}`)
	line, err := rd2.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp ctlplane.Response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("metrics over second conn: %s", resp.Err)
	}
	var ms []ctlplane.Metric
	if err := json.Unmarshal(resp.Result, &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Value != 2 {
		t.Fatalf("tenant.delete metric = %v, want 2 deletes visible across connections", ms)
	}
}
