# Scripted control-plane session replayed by `vnproxyd -script`.
# CI runs it twice and diffs the outputs: the response stream must be a
# pure function of the seed and this request sequence.
{"op":"create-tenant","tenant":"gold","quota":8,"share":4}
{"op":"add-nic","tenant":"gold","node":0}
{"op":"add-nic","tenant":"gold","node":1}
{"op":"create-network","tenant":"gold","network":"prod"}
{"op":"create-endpoint","tenant":"gold","network":"prod","endpoint":"client","node":0}
{"op":"create-endpoint","tenant":"gold","network":"prod","endpoint":"server","node":1}
{"op":"traffic","tenant":"gold","network":"prod","endpoint":"client","peer":"server","count":50}
{"op":"advance","dur":"40ms"}
{"op":"inject-fault","tenant":"gold","plan":"reboot:node1@1ms+5ms"}
{"op":"advance","dur":"40ms"}
{"op":"list-networks"}
{"op":"snapshot"}
{"op":"query-metrics","prefix":"vnet.tenant"}
{"op":"delete-network","tenant":"gold","network":"prod"}
{"op":"delete-tenant","tenant":"gold"}
# second tenant cycle on the same cluster: churn must not leak state
{"op":"create-tenant","tenant":"silver","quota":4,"share":2}
{"op":"add-nic","tenant":"silver","node":2}
{"op":"add-nic","tenant":"silver","node":3}
{"op":"create-network","tenant":"silver","network":"prod"}
{"op":"create-endpoint","tenant":"silver","network":"prod","endpoint":"a"}
{"op":"create-endpoint","tenant":"silver","network":"prod","endpoint":"b"}
{"op":"traffic","tenant":"silver","network":"prod","endpoint":"a","peer":"b","count":50}
{"op":"advance","dur":"40ms"}
{"op":"snapshot"}
{"op":"delete-tenant","tenant":"silver"}
{"op":"list-networks"}
