// Top-level benchmarks: one per table/figure of the paper's evaluation,
// each reporting the figure's headline metric via b.ReportMetric. These use
// scaled-down configurations so `go test -bench=.` completes quickly; the
// full sweeps are produced by cmd/vnbench.
package virtnet

import (
	"testing"

	"virtnet/internal/bench"
	"virtnet/internal/core"
	"virtnet/internal/gam"
	"virtnet/internal/hostos"
	"virtnet/internal/logp"
	"virtnet/internal/netsim"
	"virtnet/internal/npb"
	"virtnet/internal/sim"
)

func amPair(seed int64) (*hostos.Cluster, logp.Station, logp.Station) {
	c := hostos.NewCluster(seed, 2, hostos.DefaultClusterConfig())
	b0 := core.Attach(c.Nodes[0])
	b1 := core.Attach(c.Nodes[1])
	e0, _ := b0.NewEndpoint(1, 4)
	e1, _ := b1.NewEndpoint(2, 4)
	e0.Map(0, e1.Name(), 2)
	e1.Map(0, e0.Name(), 1)
	return c, logp.AMStation{EP: e0, Idx: 0}, logp.AMStation{EP: e1, Idx: 0}
}

func gamPair(seed int64) (*sim.Engine, *gam.World, logp.Station, logp.Station) {
	e := sim.NewEngine(seed)
	net := netsim.New(e, netsim.DefaultConfig(), 2)
	w := gam.New(e, net, gam.DefaultConfig())
	return e, w, logp.GAMStation{N: w.Node(0), Dst: 1}, logp.GAMStation{N: w.Node(1), Dst: 0}
}

// Fig. 3: LogP parameters for virtual networks (AM).
func BenchmarkFig3LogPAM(b *testing.B) {
	b.ReportAllocs()
	var r logp.Result
	for i := 0; i < b.N; i++ {
		c, cl, sv := amPair(int64(i + 1))
		r = logp.Measure(c.E, cl, sv, 50)
		c.Shutdown()
	}
	b.ReportMetric(r.Os.Micros(), "Os_us")
	b.ReportMetric(r.G.Micros(), "gap_us")
	b.ReportMetric(r.RTT.Micros(), "RTT_us")
}

// Fig. 3: LogP parameters for the GAM baseline.
func BenchmarkFig3LogPGAM(b *testing.B) {
	b.ReportAllocs()
	var r logp.Result
	for i := 0; i < b.N; i++ {
		e, w, cl, sv := gamPair(int64(i + 1))
		r = logp.Measure(e, cl, sv, 50)
		w.Stop()
		e.Shutdown()
	}
	b.ReportMetric(r.Os.Micros(), "Os_us")
	b.ReportMetric(r.G.Micros(), "gap_us")
	b.ReportMetric(r.RTT.Micros(), "RTT_us")
}

// Fig. 4: 8 KB transfer bandwidth, AM (paper: 43.9 MB/s).
func BenchmarkFig4BandwidthAM(b *testing.B) {
	b.ReportAllocs()
	var mbps float64
	for i := 0; i < b.N; i++ {
		c, cl, sv := amPair(int64(i + 1))
		mbps = logp.Bandwidth(c.E, cl, sv, 8192, 100)
		c.Shutdown()
	}
	b.ReportMetric(mbps, "MB/s")
}

// Fig. 4: 8 KB transfer bandwidth, GAM (paper: 38 MB/s).
func BenchmarkFig4BandwidthGAM(b *testing.B) {
	b.ReportAllocs()
	var mbps float64
	for i := 0; i < b.N; i++ {
		e, w, cl, sv := gamPair(int64(i + 1))
		mbps = logp.Bandwidth(e, cl, sv, 8192, 100)
		w.Stop()
		e.Shutdown()
	}
	b.ReportMetric(mbps, "MB/s")
}

// Fig. 5: NPB CG speedup at 8 processes on the simulated NOW.
func BenchmarkFig5NPBCGonNOW(b *testing.B) {
	b.ReportAllocs()
	k, _ := npb.KernelByName("CG")
	k.Iters = 3
	k.Flops = 40e6
	k.Bytes = 200e3
	var sp float64
	for i := 0; i < b.N; i++ {
		now := npb.NewNOW(int64(i + 1))
		s, ok := npb.Speedup(now, k, []int{8})
		if !ok {
			b.Fatal("NOW run failed")
		}
		sp = s[0]
	}
	b.ReportMetric(sp, "speedup_at_8")
}

// Fig. 5: FT on the analytic SP-2 and Origin comparators.
func BenchmarkFig5NPBFTComparators(b *testing.B) {
	b.ReportAllocs()
	ft, _ := npb.KernelByName("FT")
	var sp2, ori float64
	for i := 0; i < b.N; i++ {
		s1, _ := npb.Speedup(npb.SP2(), ft, []int{32})
		s2, _ := npb.Speedup(npb.Origin2000(), ft, []int{32})
		sp2, ori = s1[0], s2[0]
	}
	b.ReportMetric(sp2, "SP2_speedup_32")
	b.ReportMetric(ori, "Origin_speedup_32")
}

func csRun(b *testing.B, cfg bench.CSConfig) bench.CSResult {
	b.Helper()
	cfg.Warmup = 100 * sim.Millisecond
	cfg.Window = 200 * sim.Millisecond
	var r bench.CSResult
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r = bench.RunClientServer(cfg)
	}
	return r
}

// Fig. 6: small-message contention, shared-endpoint server (paper peak ~78K).
func BenchmarkFig6SmallOneVN(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 4, Mode: bench.OneVN, Frames: 8})
	b.ReportMetric(r.AggregateMsgs, "msgs/s")
}

// Fig. 6: single-threaded server, 8 frames, overcommitted.
func BenchmarkFig6SmallST8(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 12, Mode: bench.ST, Frames: 8})
	b.ReportMetric(r.AggregateMsgs, "msgs/s")
	b.ReportMetric(r.RemapsPerSec, "remaps/s")
}

// Fig. 6: multi-threaded server, 96 frames.
func BenchmarkFig6SmallMT96(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 12, Mode: bench.MT, Frames: 96})
	b.ReportMetric(r.AggregateMsgs, "msgs/s")
}

// Fig. 7: bulk contention, shared endpoint (paper: ~42.8 MB/s aggregate).
func BenchmarkFig7BulkOneVN(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 4, Mode: bench.OneVN, Frames: 8, MsgBytes: 8192})
	b.ReportMetric(r.AggregateMBps, "MB/s")
}

// Fig. 7: bulk contention, per-client endpoints with 96 frames (paper: beats
// OneVN because one-to-one connections avoid overruns).
func BenchmarkFig7BulkST96(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 12, Mode: bench.ST, Frames: 96, MsgBytes: 8192})
	b.ReportMetric(r.AggregateMBps, "MB/s")
}

// §6.2: Linpack (paper: 10.14 GF on 100 nodes; scaled here).
func BenchmarkE62Linpack(b *testing.B) {
	b.ReportAllocs()
	var r bench.LinpackResult
	for i := 0; i < b.N; i++ {
		var ok bool
		r, ok = bench.RunLinpack(bench.LinpackConfig{
			Nodes: 16, N: 1024, NB: 128, RateFlops: 135e6, Seed: int64(i + 1)})
		if !ok {
			b.Fatal("linpack failed")
		}
	}
	b.ReportMetric(r.GFlops, "GFLOPS")
	b.ReportMetric(r.Efficiency*100, "pct_of_peak")
}

// §6.3: time-shared parallel applications (paper: within 15% of sequence).
func BenchmarkE63Timeshare(b *testing.B) {
	b.ReportAllocs()
	var r bench.TimeshareResult
	for i := 0; i < b.N; i++ {
		var ok bool
		r, ok = bench.RunTimeshare(bench.TimeshareConfig{
			Nodes: 4, Apps: 2, Iters: 15,
			Compute: 2 * sim.Millisecond, MsgBytes: 2048, Seed: int64(i + 1)})
		if !ok {
			b.Fatal("timeshare failed")
		}
	}
	b.ReportMetric(r.Ratio, "shared_over_seq")
}

// §6.4.1: 8:1 overcommit robustness (paper: 50-75% of peak, 200-300 remaps/s).
func BenchmarkE64Overcommit(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 16, Mode: bench.MT, Frames: 8})
	b.ReportMetric(r.AggregateMsgs, "msgs/s")
	b.ReportMetric(r.RemapsPerSec, "remaps/s")
}

// Ablation: remove the on-host r/w state (the paper's original design).
func BenchmarkAblationNoHostRW(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 12, Mode: bench.ST, Frames: 8, DisableHostRW: true})
	b.ReportMetric(r.AggregateMsgs, "msgs/s")
}

// Ablation: LRU frame replacement instead of the paper's random policy.
func BenchmarkAblationReplacementLRU(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 12, Mode: bench.ST, Frames: 8, Policy: hostos.ReplaceLRU})
	b.ReportMetric(r.AggregateMsgs, "msgs/s")
	b.ReportMetric(r.RemapsPerSec, "remaps/s")
}

// Ablation: a single logical channel per NI pair (no latency masking).
func BenchmarkAblationChannels1(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 4, Mode: bench.OneVN, Frames: 8, Channels: 1})
	b.ReportMetric(r.AggregateMsgs, "msgs/s")
}

// Ablation: disable the WRR loiter bound.
func BenchmarkAblationLoiterOff(b *testing.B) {
	b.ReportAllocs()
	r := csRun(b, bench.CSConfig{Clients: 8, Mode: bench.ST, Frames: 96, NoLoiter: true})
	b.ReportMetric(r.AggregateMsgs, "msgs/s")
}

// §8 extension: adaptive RTT-based retransmission timers vs the fixed base,
// under a deliberately mis-set short base timeout.
func BenchmarkExtensionAdaptiveTimeout(b *testing.B) {
	b.ReportAllocs()
	run := func(adaptive bool) float64 {
		ccfg := hostos.DefaultClusterConfig()
		ccfg.NIC.RetransBase = 500 * sim.Microsecond // below bulk staging delays
		ccfg.NIC.AdaptiveTimeout = adaptive
		cl := hostos.NewCluster(1, 2, ccfg)
		defer cl.Shutdown()
		b0 := core.Attach(cl.Nodes[0])
		b1 := core.Attach(cl.Nodes[1])
		e0, _ := b0.NewEndpoint(1, 4)
		e1, _ := b1.NewEndpoint(2, 4)
		e0.Map(0, e1.Name(), 2)
		e1.Map(0, e0.Name(), 1)
		mbps := logp.Bandwidth(cl.E, logp.AMStation{EP: e0, Idx: 0}, logp.AMStation{EP: e1, Idx: 0}, 8192, 150)
		return mbps
	}
	var fixed, adaptive float64
	for i := 0; i < b.N; i++ {
		fixed = run(false)
		adaptive = run(true)
	}
	b.ReportMetric(fixed, "fixed_MB/s")
	b.ReportMetric(adaptive, "adaptive_MB/s")
}

// §8 extension: piggybacked acknowledgments vs standalone ack packets on
// bidirectional small-message traffic.
func BenchmarkExtensionPiggybackAcks(b *testing.B) {
	b.ReportAllocs()
	run := func(piggy bool) float64 {
		ccfg := hostos.DefaultClusterConfig()
		ccfg.NIC.PiggybackAcks = piggy
		cl := hostos.NewCluster(1, 2, ccfg)
		defer cl.Shutdown()
		b0 := core.Attach(cl.Nodes[0])
		b1 := core.Attach(cl.Nodes[1])
		e0, _ := b0.NewEndpoint(1, 4)
		e1, _ := b1.NewEndpoint(2, 4)
		e0.Map(0, e1.Name(), 2)
		e1.Map(0, e0.Name(), 1)
		r := logp.Measure(cl.E, logp.AMStation{EP: e0, Idx: 0}, logp.AMStation{EP: e1, Idx: 0}, 60)
		return r.G.Micros()
	}
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(off, "gap_us_standalone")
	b.ReportMetric(on, "gap_us_piggyback")
}

// §7 comparison: VIA's per-pair provisioning vs endpoint pooling under the
// NI's 8-frame constraint.
func BenchmarkVIAvsVNResourcePressure(b *testing.B) {
	b.ReportAllocs()
	var r bench.VIAPressureResult
	for i := 0; i < b.N; i++ {
		var ok bool
		r, ok = bench.RunVIAPressure(bench.VIAPressureConfig{Nodes: 10, Rounds: 5, Seed: int64(i + 1)})
		if !ok {
			b.Fatal("via pressure failed")
		}
	}
	b.ReportMetric(r.VNTime.Micros(), "VN_us")
	b.ReportMetric(r.VIATime.Micros(), "VIA_us")
	b.ReportMetric(float64(r.VIARemaps), "VIA_remaps")
}
